"""Typechecking top-down uniform transducers against output DTDs.

Section 6 of the paper contrasts its tractability result against the
*typechecking* problem ([13, 14, 15]): given an input schema ``Sin``,
an output schema ``Sout``, and a transducer ``T``, does ``T(t) ∈ Sout``
hold for every ``t ∈ Sin``?  Typechecking top-down uniform transducers
is EXPTIME-complete, while deciding text-preservation is PTIME — the
paper's headline separation.  This module implements typechecking (for
output schemas given as DTDs) so the separation can be *measured*
(benchmark E13).

Construction — the classical inverse-type computation, specialized to
DTDs:

The *summary* of an output hedge ``h`` w.r.t. the output DTD abstracts
everything its context can observe:

* per content model ``M_sigma``, the transition function induced on
  ``M_sigma`` by the root-label word of ``h``;
* a one-token abstraction of the root-label word itself (empty / a
  single label / "many") — needed at the top to check the root is one
  allowed start label;
* a flag: every node of ``h`` satisfies its content model.

Summaries form a monoid under hedge concatenation.  For a fixed input
tree, the vector ``q ↦ summary(T^q(t))`` is computed bottom-up; the
*set of reachable vectors* over all input trees is a fixpoint whose
states are exponential in the DTD — that is the EXPTIME construction.
The result is a deterministic unranked tree automaton over input trees;
typechecking is the emptiness of its complement intersected with
``Sin``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import obs

if TYPE_CHECKING:  # pragma: no cover
    from ..lint.dataflow import PrefilterArg
from ..automata.nta import NTA, TEXT, intersect_nta
from ..schema.dtd import DTD
from ..strings.dfa import DFA, determinize
from ..strings.nfa import NFA
from ..trees.tree import Tree
from .topdown import StateCall, TopDownTransducer

__all__ = [
    "Summary",
    "hedge_summary",
    "output_valid",
    "typechecks",
    "typecheck_counter_example",
    "inverse_type_nta",
]

#: The sequence abstraction tokens.
_EMPTY = "()"
_MANY = "(many)"

#: Preprocessed output types, keyed by DTD identity (DTDs are
#: immutable once constructed; preprocessing determinizes every content
#: model, which is worth reusing across per-tree checks).
_OUTPUT_TYPE_CACHE: Dict[int, "_OutputType"] = {}


def _output_type(dtd: DTD) -> "_OutputType":
    cached = _OUTPUT_TYPE_CACHE.get(id(dtd))
    if cached is None or cached.dtd is not dtd:
        cached = _OutputType(dtd)
        _OUTPUT_TYPE_CACHE[id(dtd)] = cached
    return cached


#: Placeholder consumed by content DFAs for output labels the DTD does
#: not know (the node itself is invalid; the word containing it can
#: never be accepted because no content model mentions the symbol).
_UNKNOWN = "__unknown_label__"


class _OutputType:
    """Preprocessed output DTD: complete content-model DFAs."""

    def __init__(self, dtd: DTD) -> None:
        self.dtd = dtd
        self.labels: Tuple[str, ...] = tuple(sorted(dtd.alphabet))
        alphabet = frozenset(set(self.labels) | {TEXT, _UNKNOWN})
        self.dfas: Dict[str, DFA] = {
            label: determinize(dtd.content_model(label).without_epsilon(), alphabet=alphabet)
            for label in self.labels
        }
        if obs.enabled():
            obs.add("typecheck.content_dfas", len(self.dfas))
            obs.add(
                "typecheck.content_dfa_states",
                sum(len(dfa.states) for dfa in self.dfas.values()),
            )
        # Canonical state indexing per DFA for compact summaries.
        self.state_index: Dict[str, Dict[object, int]] = {}
        self.states_of: Dict[str, List[object]] = {}
        for label, dfa in self.dfas.items():
            ordered = sorted(dfa.states, key=repr)
            self.states_of[label] = ordered
            self.state_index[label] = {state: i for i, state in enumerate(ordered)}

    def identity_maps(self) -> Tuple[Tuple[int, ...], ...]:
        return tuple(
            tuple(range(len(self.states_of[label]))) for label in self.labels
        )

    def step_maps(self, symbol: str) -> Tuple[Tuple[int, ...], ...]:
        """The per-DFA transition functions of a single symbol (labels
        outside the DTD behave like the reject placeholder)."""
        if symbol != TEXT and symbol not in self.dtd.alphabet:
            symbol = _UNKNOWN
        maps: List[Tuple[int, ...]] = []
        for label in self.labels:
            dfa = self.dfas[label]
            index = self.state_index[label]
            maps.append(
                tuple(index[dfa.step(state, symbol)] for state in self.states_of[label])
            )
        return tuple(maps)

    def accepts_word_maps(self, label: str, maps: Tuple[Tuple[int, ...], ...]) -> bool:
        """Whether the word inducing ``maps`` is in ``d(label)``."""
        position = self.labels.index(label)
        dfa = self.dfas[label]
        index = self.state_index[label]
        ordered = self.states_of[label]
        reached = ordered[maps[position][index[dfa.initial]]]
        return reached in dfa.finals


#: A hedge summary: (per-DFA maps, sequence abstraction, all-valid flag).
Summary = Tuple[Tuple[Tuple[int, ...], ...], str, bool]


def _unit(out: _OutputType) -> Summary:
    return (out.identity_maps(), _EMPTY, True)


def _compose_maps(
    first: Tuple[Tuple[int, ...], ...], second: Tuple[Tuple[int, ...], ...]
) -> Tuple[Tuple[int, ...], ...]:
    # Reading `first` then `second`: apply first, then second.
    return tuple(
        tuple(second_map[value] for value in first_map)
        for first_map, second_map in zip(first, second)
    )


def _concat(out: _OutputType, left: Summary, right: Summary) -> Summary:
    maps = _compose_maps(left[0], right[0])
    if left[1] == _EMPTY:
        abstraction = right[1]
    elif right[1] == _EMPTY:
        abstraction = left[1]
    else:
        abstraction = _MANY
    return (maps, abstraction, left[2] and right[2])


def _single_tree(out: _OutputType, label: str, inner: Summary) -> Summary:
    """Summary of the one-tree hedge ``label(inner-hedge)``."""
    known = label in out.dtd.alphabet
    ok = known and inner[2] and out.accepts_word_maps(label, inner[0])
    return (out.step_maps(label), label, ok)


def _text_summary(out: _OutputType) -> Summary:
    return (out.step_maps(TEXT), TEXT, True)


class _Evaluator:
    """Computes transducer-state → summary vectors bottom-up."""

    def __init__(self, transducer: TopDownTransducer, out: _OutputType) -> None:
        self.transducer = transducer
        self.out = out
        self.states: Tuple[str, ...] = tuple(sorted(transducer.states))

    def text_vector(self) -> Tuple[Summary, ...]:
        return tuple(
            _text_summary(self.out)
            if state in self.transducer.text_states
            else _unit(self.out)
            for state in self.states
        )

    def combine(
        self, symbol: str, child_products: Dict[str, Summary]
    ) -> Tuple[Summary, ...]:
        """The vector of a node labelled ``symbol`` whose children's
        concatenated summaries (per transducer state) are
        ``child_products``."""
        vector: List[Summary] = []
        for state in self.states:
            rhs = self.transducer.rhs(state, symbol)
            if rhs is None:
                vector.append(_unit(self.out))
            else:
                vector.append(self._eval_rhs(rhs, child_products))
        return tuple(vector)

    def _eval_rhs(self, items: Sequence[object], products: Dict[str, Summary]) -> Summary:
        result = _unit(self.out)
        for item in items:
            if isinstance(item, StateCall):
                result = _concat(self.out, result, products[item.state])
            else:
                inner = self._eval_rhs(item.children, products)  # type: ignore[union-attr]
                result = _concat(
                    self.out, result, _single_tree(self.out, item.label, inner)
                )
        return result

    def vector_of_tree(self, t: Tree) -> Tuple[Summary, ...]:
        if t.is_text:
            return self.text_vector()
        products = {state: _unit(self.out) for state in self.states}
        for child in t.children:
            child_vector = self.vector_of_tree(child)
            for index, state in enumerate(self.states):
                products[state] = _concat(self.out, products[state], child_vector[index])
        return self.combine(t.label, products)

    def root_ok(self, vector: Tuple[Summary, ...]) -> bool:
        """Whether a root with this vector produces a valid output tree."""
        q0 = self.states.index(self.transducer.initial)
        _maps, abstraction, ok = vector[q0]
        return ok and abstraction in self.out.dtd.start


def hedge_summary(transducer: TopDownTransducer, output_dtd: DTD, t: Tree) -> Summary:
    """The summary of ``T(t)`` (as a hedge) w.r.t. the output DTD —
    the per-tree building block of the inverse-type construction."""
    out = _output_type(output_dtd)
    evaluator = _Evaluator(transducer, out)
    vector = evaluator.vector_of_tree(t)
    return vector[evaluator.states.index(transducer.initial)]


def output_valid(transducer: TopDownTransducer, output_dtd: DTD, t: Tree) -> bool:
    """Whether ``T(t)`` is a single tree valid w.r.t. the output DTD —
    decided through summaries (cross-checked in tests against running
    the transducer and validating directly)."""
    out = _output_type(output_dtd)
    evaluator = _Evaluator(transducer, out)
    return evaluator.root_ok(evaluator.vector_of_tree(t))


def inverse_type_nta(
    transducer: TopDownTransducer,
    output_dtd: DTD,
    input_alphabet: Iterable[str],
    accept_valid: bool = False,
) -> NTA:
    """The inverse-type automaton: an NTA over input trees accepting
    exactly those on which the output is *invalid* (or valid, with
    ``accept_valid``).

    States are the reachable summary vectors (exponentially many in the
    worst case — the EXPTIME construction); horizontal languages are
    DFAs computing the running product of child summaries.
    """
    with obs.span("typecheck.inverse_type") as sp, obs.track_peak_memory():
        result = _inverse_type_nta_impl(transducer, output_dtd, input_alphabet, accept_valid)
        sp.set("states", len(result.states))
        obs.observe("typecheck.inverse_type_size", len(result.states))
        if obs.enabled():
            # The EXPTIME blow-up gauge: peak reachable-vector automaton
            # size across every inverse-type construction of the run.
            obs.gauge_max("typecheck.inverse_type_states", len(result.states))
            obs.observe("typecheck.inverse_type.ms", sp.duration_ns / 1e6)
        obs.debug("typecheck", "inverse-type automaton built",
                  states=len(result.states), accept_valid=accept_valid)
        return result


def _inverse_type_nta_impl(
    transducer: TopDownTransducer,
    output_dtd: DTD,
    input_alphabet: Iterable[str],
    accept_valid: bool,
) -> NTA:
    out = _output_type(output_dtd)
    evaluator = _Evaluator(transducer, out)
    sigma = tuple(sorted(set(input_alphabet)))

    unit_product = tuple(_unit(out) for _ in evaluator.states)
    text_vector = evaluator.text_vector()

    # Discover reachable vectors and reachable running products with a
    # worklist: each (product, vector) pair and each (symbol, product)
    # pair is processed exactly once.
    vectors: Set[Tuple[Summary, ...]] = {text_vector}
    products: Set[Tuple[Summary, ...]] = {unit_product}
    transitions_h: Dict[Tuple[Tuple[Summary, ...], Tuple[Summary, ...]], Tuple[Summary, ...]] = {}
    results: Dict[Tuple[str, Tuple[Summary, ...]], Tuple[Summary, ...]] = {}
    n_states = len(evaluator.states)
    work_products: List[Tuple[Summary, ...]] = [unit_product]
    work_vectors: List[Tuple[Summary, ...]] = [text_vector]

    def found_product(candidate: Tuple[Summary, ...]) -> None:
        if candidate not in products:
            products.add(candidate)
            work_products.append(candidate)

    def found_vector(candidate: Tuple[Summary, ...]) -> bool:
        if candidate not in vectors:
            vectors.add(candidate)
            work_vectors.append(candidate)
            return True
        return False

    def pair(product: Tuple[Summary, ...], vector: Tuple[Summary, ...]) -> None:
        key = (product, vector)
        if key in transitions_h:
            return
        combined = tuple(
            _concat(out, product[i], vector[i]) for i in range(n_states)
        )
        transitions_h[key] = combined
        found_product(combined)

    attribute = obs.enabled()
    vectors_by_label: Dict[str, int] = {}
    while work_products or work_vectors:
        if work_products:
            product = work_products.pop()
            for vector in list(vectors):
                pair(product, vector)
            for symbol in sigma:
                key2 = (symbol, product)
                if key2 not in results:
                    as_dict = dict(zip(evaluator.states, product))
                    vector = evaluator.combine(symbol, as_dict)
                    results[key2] = vector
                    if found_vector(vector) and attribute:
                        # A fresh summary vector, credited to the input
                        # label whose combine step discovered it.
                        vectors_by_label[symbol] = vectors_by_label.get(symbol, 0) + 1
        else:
            vector = work_vectors.pop()
            for product in list(products):
                pair(product, vector)

    if obs.enabled():
        attributed = 0
        for symbol in sorted(vectors_by_label):
            obs.add("typecheck.vectors", vectors_by_label[symbol],
                    label=symbol, site="inverse_type")
            attributed += vectors_by_label[symbol]
        # The seed text vector is the only vector no label discovered,
        # so the flat total stays exactly len(vectors).
        remainder = len(vectors) - attributed
        if remainder:
            obs.add("typecheck.vectors", remainder)
        obs.add("typecheck.products", len(products))

    # Name the states compactly.
    vector_name = {vector: ("v", i) for i, vector in enumerate(sorted(vectors, key=repr))}
    product_name = {product: ("h", i) for i, product in enumerate(sorted(products, key=repr))}

    delta: Dict[Tuple[object, str], NFA] = {}
    # One shared horizontal transition structure (a DFA over vector
    # symbols with product states); per-rule automata differ only in
    # their final-state sets and share it structurally.
    h_states = list(product_name.values())
    h_edges = [
        (product_name[product], vector_name[vector], product_name[target])
        for (product, vector), target in transitions_h.items()
    ]
    base_h = NFA(h_states, list(vector_name.values()), h_edges, product_name[unit_product], [])

    for symbol in sigma:
        # Group the products by the vector they yield under `symbol`.
        finals_of_vector: Dict[Tuple[Summary, ...], Set[object]] = {}
        for product in products:
            vector = results[(symbol, product)]
            finals_of_vector.setdefault(vector, set()).add(product_name[product])
        for vector, finals in finals_of_vector.items():
            delta[(vector_name[vector], symbol)] = base_h.with_finals(finals)
    eps_nfa = NFA([0], [], [], 0, [0])
    delta[(vector_name[text_vector], TEXT)] = eps_nfa

    # Root: a fresh initial state accepting trees whose root vector is
    # (in)valid.  The NTA needs one initial state: add q_root whose
    # horizontal languages mirror those of the qualifying vectors.
    root_vectors = [
        vector
        for vector in vectors
        if evaluator.root_ok(vector) == accept_valid
    ]
    states: Set[object] = set(vector_name.values()) | {("root",)}
    from ..strings.nfa import union_nfa

    for symbol in sigma:
        parts = [
            delta[(vector_name[vector], symbol)]
            for vector in root_vectors
            if (vector_name[vector], symbol) in delta
        ]
        if not parts:
            continue
        combined_nfa = parts[0]
        for part in parts[1:]:
            combined_nfa = union_nfa(combined_nfa, part)
        delta[(("root",), symbol)] = combined_nfa
    if text_vector in root_vectors:
        delta[(("root",), TEXT)] = eps_nfa
    return NTA(states, sigma, delta, ("root",))


def typechecks(
    transducer: TopDownTransducer,
    input_schema: NTA,
    output_dtd: DTD,
    prefilter: "PrefilterArg" = None,
) -> bool:
    """Whether ``T(t)`` is valid w.r.t. the output DTD for *every*
    ``t ∈ L(input_schema)`` (EXPTIME in general).

    Two sound dataflow pre-filters (see :mod:`repro.lint.dataflow`):

    * **Bad-label short-circuit.**  Every label in the summary's exact
      ``output_labels`` set is emitted on some valid input (a realizable
      rule fires there and its rhs labels are instantiated
      unconditionally), so any such label outside the output DTD's
      alphabet makes the output invalid on that input: the answer is
      definitely ``False``, no inverse type needed.
    * **Sigma restriction.**  The inverse-type construction only needs
      the labels that occur in *some* tree of ``L(input_schema)``
      (``generated_labels``), not the schema's declared alphabet:
      trees using other labels are not in the intersection anyway.
      Note the restriction must come from the schema, not from the
      transducer's explored configurations — configuration exploration
      stops below deleted subtrees, but the schema may force labels
      there.
    """
    from ..lint.dataflow import log_skip, resolve_prefilter

    summary = resolve_prefilter(transducer, input_schema, prefilter)
    with obs.span("typecheck.decide") as sp, obs.track_peak_memory():
        sigma: Iterable[str] = input_schema.alphabet
        if summary is not None:
            if summary.has_pass("label-flow"):
                bad_labels = sorted(summary.output_labels - set(output_dtd.alphabet))
                if bad_labels:
                    sp.set("verdict", False)
                    log_skip(
                        "typechecks", "label-flow", bad_label=bad_labels[0]
                    )
                    obs.info("typecheck", "typecheck decided",
                             typechecks=False, product_states=0)
                    return False
            restricted = set(summary.schema_generated_labels)
            obs.add(
                "typecheck.sigma_pruned",
                len(set(input_schema.alphabet) - restricted),
            )
            sigma = restricted
        bad = inverse_type_nta(
            transducer, output_dtd, sigma, accept_valid=False
        )
        with obs.span("typecheck.emptiness") as inner:
            product = intersect_nta(bad, input_schema)
            inner.set("states", len(product.states))
            verdict = product.is_empty()
        obs.observe("typecheck.product_size", len(product.states))
        if obs.enabled():
            obs.observe("typecheck.emptiness.ms", inner.duration_ns / 1e6)
        sp.set("verdict", verdict)
        obs.info("typecheck", "typecheck decided",
                 typechecks=verdict, product_states=len(product.states))
        return verdict


def typecheck_counter_example(
    transducer: TopDownTransducer, input_schema: NTA, output_dtd: DTD
) -> Optional[Tree]:
    """A smallest input tree whose output violates the output DTD, or
    ``None`` when the transducer typechecks."""
    with obs.span("typecheck.counter_example"):
        bad = inverse_type_nta(
            transducer, output_dtd, input_schema.alphabet, accept_valid=False
        )
        return intersect_nta(bad, input_schema).witness()
