"""Semantic notions of Section 3: admissibility, copying, rearranging,
and the Theorem 3.3 characterization.

These are *semantic* (black-box) definitions on transductions, used to
cross-validate the syntactic decision procedures of Sections 4 and 5.
A transduction here is any callable from trees to trees or hedges.

Definitions implemented:

* ``text-preserving`` (Definition 2.2): ``text-content(T(t))`` is a
  subsequence of ``text-content(t)``;
* ``copying`` / ``rearranging`` (Definition 3.1), evaluated on
  value-unique trees;
* ``Text-independent`` / ``Text-functional`` / ``admissible``
  (Definition 3.2) — verified on bounded substitution samples, which is
  the best a black-box check can do;
* :func:`theorem_3_3_holds` — empirical verification that
  text-preserving ⟺ neither copying nor rearranging, on a given tree.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..trees.navigation import is_subsequence, text_nodes, text_values
from ..trees.substitution import (
    apply_substitution,
    canonical_substitution,
    is_value_unique,
    make_value_unique,
)
from ..trees.tree import Hedge, Node, Tree

__all__ = [
    "Transduction",
    "output_text_values",
    "is_text_preserving_on",
    "is_copying_on",
    "is_rearranging_on",
    "is_text_independent_on",
    "is_text_functional_on",
    "is_admissible_on",
    "theorem_3_3_holds",
    "rearranged_pair",
]

#: A transduction: trees to trees or hedges.
Transduction = Callable[[Tree], Union[Tree, Hedge]]


def output_text_values(result: Union[Tree, Hedge]) -> Tuple[str, ...]:
    """Text values of a transduction result (tree or hedge) in document
    order."""
    if isinstance(result, Tree):
        return text_values(result)
    values: List[str] = []
    for t in result:
        values.extend(text_values(t))
    return tuple(values)


def _output_text_nodes(result: Union[Tree, Hedge]) -> List[Tuple[int, Node]]:
    """Addresses of text nodes in a result, tagged by tree index so
    hedges are covered too."""
    if isinstance(result, Tree):
        return [(0, node) for node in text_nodes(result)]
    out: List[Tuple[int, Node]] = []
    for index, t in enumerate(result):
        out.extend((index, node) for node in text_nodes(t))
    return out


def is_text_preserving_on(transduction: Transduction, t: Tree) -> bool:
    """Definition 2.2, on a single tree."""
    return is_subsequence(output_text_values(transduction(t)), text_values(t))


def is_copying_on(transduction: Transduction, t: Tree) -> bool:
    """Definition 3.1 (copying), evaluated on the value-unique version
    of ``t``: the output carries some Text-value twice."""
    unique = make_value_unique(t)
    out = output_text_values(transduction(unique))
    return len(out) != len(set(out))


def rearranged_pair(
    transduction: Transduction, t: Tree
) -> Optional[Tuple[str, str]]:
    """A pair ``(gamma1, gamma2)`` witnessing rearranging on the
    value-unique version of ``t`` (Definition 3.1), or ``None``.

    ``gamma1 gamma2`` is a subsequence of the input content while
    ``gamma2 gamma1`` is a subsequence of the output content.
    """
    unique = make_value_unique(t)
    inputs = text_values(unique)
    position = {value: index for index, value in enumerate(inputs)}
    out = output_text_values(transduction(unique))
    # For each value, the earliest output occurrence; a pair (a, b) with
    # a before b in the input and b before a in the output rearranges.
    first_out: Dict[str, int] = {}
    for index, value in enumerate(out):
        first_out.setdefault(value, index)
    placed = [v for v in out if v in position]
    for i in range(len(placed)):
        for j in range(i + 1, len(placed)):
            later, earlier = placed[i], placed[j]
            if later == earlier:
                continue
            if position[earlier] < position[later]:
                # earlier precedes later in the input, but later has an
                # output occurrence before this occurrence of earlier.
                return (earlier, later)
    return None


def is_rearranging_on(transduction: Transduction, t: Tree) -> bool:
    """Definition 3.1 (rearranging) on a single tree."""
    return rearranged_pair(transduction, t) is not None


# ---------------------------------------------------------------------------
# Admissibility (Definition 3.2), on bounded substitution samples
# ---------------------------------------------------------------------------


def _substitution_samples(t: Tree, rounds: int) -> Iterable[Dict[Node, str]]:
    """A deterministic battery of Text-substitutions for ``t``: all-same
    values, value-unique, reversed-unique, and a few mixed patterns."""
    nodes = list(text_nodes(t))
    yield {node: "g" for node in nodes}
    yield {node: "u%d" % i for i, node in enumerate(nodes)}
    yield {node: "u%d" % (len(nodes) - i) for i, node in enumerate(nodes)}
    for round_index in range(rounds):
        yield {
            node: "m%d" % ((i + round_index) % max(1, (round_index + 2)))
            for i, node in enumerate(nodes)
        }


def is_text_independent_on(
    transduction: Transduction, t: Tree, rounds: int = 3
) -> bool:
    """Bounded check of Text-independence: canonical substitutions of
    the outputs agree across a battery of input substitutions."""
    reference = _canonical_result(transduction(t))
    for mapping in _substitution_samples(t, rounds):
        candidate = _canonical_result(transduction(apply_substitution(t, mapping)))
        if candidate != reference:
            return False
    return True


def _canonical_result(result: Union[Tree, Hedge]) -> Tuple[Tree, ...]:
    if isinstance(result, Tree):
        result = (result,)
    return tuple(canonical_substitution(t) for t in result)


def is_text_functional_on(
    transduction: Transduction, t: Tree, rounds: int = 3
) -> bool:
    """Bounded check of Text-functionality: output values at each output
    text node track a fixed input text node across substitutions.

    The witness function ``f`` is derived from the value-unique run and
    then validated against the substitution battery.
    """
    unique = make_value_unique(t)
    value_to_node = {unique.subtree(node).label: node for node in text_nodes(unique)}
    if not is_value_unique(unique):  # pragma: no cover - make_value_unique guarantees it
        raise AssertionError("make_value_unique failed")
    base_out = transduction(unique)
    f: Dict[Tuple[int, Node], Node] = {}
    for index, out_node in _output_text_nodes(base_out):
        value = (base_out if isinstance(base_out, Tree) else base_out[index]).subtree(
            out_node
        ).label
        if value not in value_to_node:
            return False  # invented a Text-value: not Text-functional
        f[(index, out_node)] = value_to_node[value]
    for mapping in _substitution_samples(unique, rounds):
        substituted = apply_substitution(unique, mapping)
        out = transduction(substituted)
        out_nodes = _output_text_nodes(out)
        if set(out_nodes) != set(_output_text_nodes(base_out)):
            return False  # shape changed: cannot compare (also not admissible)
        for index, out_node in out_nodes:
            expected = substituted.subtree(f[(index, out_node)]).label
            actual = (out if isinstance(out, Tree) else out[index]).subtree(out_node).label
            if actual != expected:
                return False
    return True


def is_admissible_on(transduction: Transduction, t: Tree, rounds: int = 3) -> bool:
    """Bounded check of Definition 3.2 on a single tree."""
    return is_text_independent_on(transduction, t, rounds) and is_text_functional_on(
        transduction, t, rounds
    )


def theorem_3_3_holds(transduction: Transduction, t: Tree) -> bool:
    """Empirically verify Theorem 3.3 on ``t``: the transduction is
    text-preserving on the value-unique version of ``t`` iff it is
    neither copying nor rearranging there.

    (For admissible transductions the value-unique check extends to all
    substitutions of ``t`` — that is the content of the theorem.)
    """
    unique = make_value_unique(t)
    preserving = is_text_preserving_on(transduction, unique)
    bad = is_copying_on(transduction, t) or is_rearranging_on(transduction, t)
    return preserving == (not bad)
