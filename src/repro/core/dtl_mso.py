"""DTL^MSO: DTL instantiated with MSO-definable patterns (paper, §5.3).

An MSO pattern carries its formula and the designated free variables.
Evaluation strategy:

* with an explicit ``sigma`` the pattern compiles to a tree automaton
  once (:mod:`repro.mso.compile`) and each query is a linear-time
  automaton run on the marked encoding;
* without ``sigma`` it falls back to the direct model-theoretic
  evaluator — exponential in set-quantifier depth, fine for small
  example documents.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..mso.ast import Formula, free_variables, substitute_free
from ..mso.compile import CompiledPattern, compile_mso
from ..mso.eval import MSOEvaluator
from ..trees.tree import Node
from .dtl import BinaryPattern, DTLTransducer, EvaluationContext, UnaryPattern

__all__ = ["MSOUnary", "MSOBinary", "dtl_mso"]


def _direct(ctx: EvaluationContext) -> MSOEvaluator:
    return ctx.cache("mso", lambda: MSOEvaluator(ctx.tree))  # type: ignore[return-value]


class MSOUnary(UnaryPattern):
    """A unary pattern ``phi(x)`` given by an MSO formula."""

    __slots__ = ("formula", "var", "sigma", "_compiled")

    def __init__(self, formula: Formula, var: str, sigma: Optional[Iterable[str]] = None) -> None:
        free = free_variables(formula)
        if set(free) != {var}:
            raise ValueError(
                "unary pattern must have exactly the free variable %r, got %r"
                % (var, sorted(free))
            )
        self.formula = formula
        self.var = var
        self.sigma = tuple(sorted(sigma)) if sigma is not None else None
        self._compiled: Optional[CompiledPattern] = None

    def _pattern(self) -> CompiledPattern:
        if self._compiled is None:
            assert self.sigma is not None
            self._compiled = compile_mso(self.formula, self.sigma)
        return self._compiled

    def holds(self, ctx: EvaluationContext, node: Node) -> bool:
        if self.sigma is not None:
            return self._pattern().holds(ctx.tree, {self.var: node})
        return _direct(ctx).holds(self.formula, {self.var: node})

    def to_mso(self, x: str):
        return substitute_free(self.formula, {self.var: x})

    def __repr__(self) -> str:
        return "MSOUnary(%s)" % self.formula


class MSOBinary(BinaryPattern):
    """A binary pattern ``alpha(x, y)`` given by an MSO formula."""

    __slots__ = ("formula", "source_var", "target_var", "sigma", "_compiled")

    def __init__(
        self,
        formula: Formula,
        source_var: str,
        target_var: str,
        sigma: Optional[Iterable[str]] = None,
    ) -> None:
        free = free_variables(formula)
        if set(free) != {source_var, target_var} or source_var == target_var:
            raise ValueError(
                "binary pattern must have exactly the free variables %r and %r, got %r"
                % (source_var, target_var, sorted(free))
            )
        self.formula = formula
        self.source_var = source_var
        self.target_var = target_var
        self.sigma = tuple(sorted(sigma)) if sigma is not None else None
        self._compiled: Optional[CompiledPattern] = None

    def _pattern(self) -> CompiledPattern:
        if self._compiled is None:
            assert self.sigma is not None
            self._compiled = compile_mso(self.formula, self.sigma)
        return self._compiled

    def select(self, ctx: EvaluationContext, node: Node) -> Tuple[Node, ...]:
        t = ctx.tree
        if self.sigma is not None:
            pattern = self._pattern()
            return tuple(
                v
                for v in t.nodes()
                if pattern.holds(t, {self.source_var: node, self.target_var: v})
            )
        evaluator = _direct(ctx)
        return tuple(
            v
            for v in t.nodes()
            if evaluator.holds(
                self.formula, {self.source_var: node, self.target_var: v}
            )
        )

    def to_mso(self, x: str, y: str):
        return substitute_free(self.formula, {self.source_var: x, self.target_var: y})

    def __repr__(self) -> str:
        return "MSOBinary(%s)" % self.formula


def dtl_mso(
    states,
    rules,
    text_states,
    initial,
    sigma: Optional[Iterable[str]] = None,
    max_steps: int = 100000,
) -> DTLTransducer:
    """Build a DTL^MSO transducer.

    ``rules`` is an iterable of ``(state, (formula, var), rhs)``
    triples; rhs calls may use ``Call(q, (formula, x, y))``.
    ``sigma`` switches pattern evaluation to compiled automata.
    """
    from .dtl import Call

    def wrap_rhs(rhs):
        if isinstance(rhs, list):
            return [wrap_rhs(item) for item in rhs]
        if isinstance(rhs, Call) and isinstance(rhs.pattern, tuple):
            formula, x, y = rhs.pattern
            return Call(rhs.state, MSOBinary(formula, x, y, sigma))
        if isinstance(rhs, tuple) and len(rhs) == 2 and isinstance(rhs[0], str):
            return (rhs[0], wrap_rhs(rhs[1]))
        return rhs

    prepared = []
    for state, pattern, rhs in rules:
        if isinstance(pattern, tuple):
            formula, var = pattern
            pattern = MSOUnary(formula, var, sigma)
        prepared.append((state, pattern, wrap_rhs(rhs)))
    return DTLTransducer(states, prepared, text_states, initial, max_steps)
