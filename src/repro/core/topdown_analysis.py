"""Deciding text-preservation for top-down transducers (paper, §4.2-4.3).

The pipeline follows the paper exactly:

* :func:`path_automaton` — Lemma 4.8(1): an NFA for the text-path
  language of ``L(N)`` (all ``anc-str`` strings of text nodes in trees
  of the schema), built in polynomial time.
* :func:`transducer_path_automaton` — Lemma 4.8(2): an NFA for the text
  paths on which the transducer has a path run.
* :func:`copying_nfa` — the product automaton ``M`` of Lemma 4.9:
  simulates the schema path automaton and two copies of the transducer
  path automaton, accepting iff a text path witnesses copying
  (two distinct path runs, or a doubling rule on a path run).
* :func:`copying_nta` / :func:`rearranging_nta` — NTAs accepting the
  trees on which ``T`` copies / rearranges (the automaton ``M`` of
  Lemma 4.10 and its copying analogue).  Their intersections with the
  schema give PTIME decisions *and* concrete counter-example trees,
  and their union is the regular language of counter-examples that
  Section 7 builds on.
* :func:`is_text_preserving` — Theorem 4.11.

Everything here is polynomial in ``|T| + |N|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .. import obs
from ..automata.nta import NTA, TEXT, intersect_nta, union_nta
from ..strings.nfa import NFA
from ..trees.substitution import make_value_unique
from ..trees.tree import Tree
from .topdown import TopDownTransducer

if TYPE_CHECKING:  # pragma: no cover
    from ..lint.dataflow import DataflowSummary, PrefilterArg

__all__ = [
    "path_automaton",
    "transducer_path_automaton",
    "copying_nfa",
    "copying_nta",
    "rearranging_nta",
    "counter_example_nta",
    "is_copying",
    "is_rearranging",
    "is_text_preserving",
    "copying_witness_path",
    "counter_example",
    "CopyingReport",
    "copying_report",
    "copying_counter_example",
    "RearrangingFinding",
    "rearranging_findings",
    "rearranging_counter_example",
]

State = Hashable

#: The accepting sink of path automata (reached on reading ``text``).
_ACC = ("acc",)


def _resolve_prefilter(
    transducer: TopDownTransducer, nta: NTA, prefilter: "PrefilterArg"
) -> Optional["DataflowSummary"]:
    """Resolve a ``prefilter=`` argument to a dataflow summary or
    ``None`` (pre-filtering off).  Imported lazily: the dataflow
    package depends on this module."""
    from ..lint.dataflow import resolve_prefilter

    return resolve_prefilter(transducer, nta, prefilter)


def _log_skip(procedure: str, pass_name: str, **details: object) -> None:
    from ..lint.dataflow import log_skip

    log_skip(procedure, pass_name, **details)


def _add_attributed_states(
    rule_states: Dict[Tuple[str, str], int],
    total: int,
    site: str,
    structural: Tuple[Tuple[str, int], ...] = (),
) -> None:
    """Report ``ptime.product_states`` with per-rule attribution.

    The flat total is always exactly ``total``: each per-rule increment
    carries ``rule=``/``site=`` labels, and the constant bookkeeping
    states no rule discovered — the initial seed configuration and the
    ``_ACC``/``_D`` sinks — are reported under parenthesized
    pseudo-rules (``structural`` is their ``(role, count)`` list) so
    the attribution table sums to the flat total instead of leaving a
    silent gap.  Attribution never perturbs the exact flat counters
    the bench gate compares.
    """
    attributed = 0
    for (state, symbol), count in sorted(rule_states.items()):
        obs.add("ptime.product_states", count,
                rule="%s/%s" % (state, symbol), site=site)
        attributed += count
    for role, count in structural:
        if count:
            obs.add("ptime.product_states", count, rule=role, site=site)
            attributed += count
    remainder = total - attributed
    if remainder:
        # Safety net: any state neither a rule nor a declared
        # structural role discovered stays in the flat total unlabeled.
        obs.add("ptime.product_states", remainder)


def _useful_child_states(nta: NTA, state: State, symbol: str) -> Set[State]:
    """States occurring in some horizontal word over inhabited states
    for ``delta(state, symbol)`` — the possible child states inside a
    completable tree."""
    horizontal = nta.delta.get((state, symbol))
    if horizontal is None:
        return set()
    inhabited = nta.inhabited_states()
    from ..automata.nta import _symbols_on_useful_paths

    return set(_symbols_on_useful_paths(horizontal, inhabited))


def path_automaton(nta: NTA) -> NFA:
    """Lemma 4.8(1): an NFA accepting the text-path language of ``L(nta)``.

    Words have the shape ``a1 ... an text``; the NFA's states are the
    NTA's states plus an accepting sink, and reading a label moves to a
    possible child state within a completable accepted tree.
    """
    with obs.span("ptime.path_automaton") as sp:
        transitions: List[Tuple[State, str, State]] = []
        inhabited = nta.inhabited_states()
        if nta.initial not in inhabited:
            return NFA(
                {nta.initial, _ACC}, set(nta.alphabet) | {TEXT}, [], nta.initial, {_ACC}
            )
        for (state, symbol), _horizontal in nta.delta.items():
            if state not in inhabited:
                continue
            if symbol == TEXT:
                if nta.allows_empty(state, TEXT):
                    transitions.append((state, TEXT, _ACC))
                continue
            for child in _useful_child_states(nta, state, symbol):
                transitions.append((state, symbol, child))
        states = set(inhabited) | {_ACC, nta.initial}
        sp.set("states", len(states))
        sp.set("transitions", len(transitions))
        obs.add("ptime.path_automaton_states", len(states))
        obs.observe("ptime.path_automaton_size", len(states))
        obs.debug("ptime.path_automaton", "schema path automaton built",
                  states=len(states), transitions=len(transitions))
        return NFA(states, set(nta.alphabet) | {TEXT}, transitions, nta.initial, {_ACC})


def transducer_path_automaton(transducer: TopDownTransducer) -> NFA:
    """Lemma 4.8(2): an NFA accepting the text paths on which the
    transducer has a path run (ending with a value-copying text rule)."""
    if not isinstance(transducer, TopDownTransducer):
        raise TypeError(
            "this is the Section 4 (top-down) pipeline; for DTL transducers "
            "use repro.is_text_preserving or repro.core.dtl_analysis"
        )
    with obs.span("ptime.transducer_path_automaton") as sp:
        transitions: List[Tuple[State, str, State]] = []
        for (state, symbol), _rhs in transducer.rules.items():
            for target in set(transducer.rhs_frontier_states(state, symbol)):
                transitions.append((state, symbol, target))
        for state in transducer.text_states:
            transitions.append((state, TEXT, _ACC))
        states = set(transducer.states) | {_ACC}
        alphabet = set(transducer.alphabet) | {TEXT}
        sp.set("states", len(states))
        sp.set("transitions", len(transitions))
        obs.add("ptime.path_automaton_states", len(states))
        obs.observe("ptime.path_automaton_size", len(states))
        obs.debug("ptime.path_automaton", "transducer path automaton built",
                  states=len(states), transitions=len(transitions))
        return NFA(states, alphabet, transitions, transducer.initial, {_ACC})


# ---------------------------------------------------------------------------
# Copying (Lemmas 4.5 and 4.9)
# ---------------------------------------------------------------------------


def _pair_steps(
    transducer: TopDownTransducer, q1: str, q2: str, symbol: str, flag: int
) -> Iterable[Tuple[str, str, int]]:
    """Successor state pairs for the two simulated path runs.

    ``flag`` is 1 once the runs have diverged or a doubling rule was
    used; the invariant ``flag == 0  =>  q1 == q2`` is maintained.
    """
    targets1 = set(transducer.rhs_frontier_states(q1, symbol))
    targets2 = set(transducer.rhs_frontier_states(q2, symbol))
    for t1 in targets1:
        for t2 in targets2:
            if flag == 1:
                yield (t1, t2, 1)
            elif t1 != t2:
                yield (t1, t2, 1)  # the runs diverge here: two distinct runs
            else:
                doubled = transducer.rhs_state_multiplicity(q1, symbol, t1) >= 2
                yield (t1, t2, 1 if doubled else 0)


def copying_nfa(
    transducer: TopDownTransducer, nta: NTA, prefilter: "PrefilterArg" = None
) -> NFA:
    """Lemma 4.9's automaton ``M``: accepts the text paths of ``L(nta)``
    witnessing that the transducer copies.

    ``M`` runs the schema path automaton and two copies of the
    transducer path automaton in lockstep; it accepts when the two runs
    end in value-copying rules after having diverged, or after some
    rule on the shared prefix offered the next state twice.

    When a dataflow summary with the copy-degree pass is available (see
    ``prefilter``), pair steps into non-text-productive states are
    pruned.  This is exact: acceptance needs both runs to end in
    value-copying text rules along schema-realizable events, which is
    precisely text-productivity, and that set is backward-closed — so
    the pruned region is never on an accepting path and even the BFS
    shortest witness word is unchanged.
    """
    summary = _resolve_prefilter(transducer, nta, prefilter)
    productive = (
        summary.text_productive
        if summary is not None and summary.has_pass("copy-degree")
        else None
    )
    with obs.span("ptime.copying_product") as sp:
        schema = path_automaton(nta)
        alphabet = set(nta.alphabet) | {TEXT}
        initial = (schema.initial, transducer.initial, transducer.initial, 0)
        states: Set[State] = {initial, _ACC}
        transitions: List[Tuple[State, str, State]] = []
        stack: List[Tuple[State, str, str, int]] = [initial]
        seen: Set[State] = {initial}
        pruned = 0
        attribute = obs.enabled()
        rule_states: Dict[Tuple[str, str], int] = {}
        while stack:
            current = stack.pop()
            s_n, q1, q2, flag = current
            for symbol in schema.symbols_from(s_n):
                if symbol == TEXT:
                    if flag == 1 and q1 in transducer.text_states and q2 in transducer.text_states:
                        transitions.append((current, TEXT, _ACC))
                    continue
                schema_targets = schema.step(s_n, symbol)
                if not schema_targets:
                    continue
                for t1, t2, new_flag in _pair_steps(transducer, q1, q2, symbol, flag):
                    if productive is not None and (
                        t1 not in productive or t2 not in productive
                    ):
                        pruned += 1
                        continue
                    for s_target in schema_targets:
                        nxt = (s_target, t1, t2, new_flag)
                        transitions.append((current, symbol, nxt))
                        if nxt not in seen:
                            seen.add(nxt)
                            states.add(nxt)
                            stack.append(nxt)
                            if attribute:
                                rule = (q1, symbol)
                                rule_states[rule] = rule_states.get(rule, 0) + 1
        sp.set("states", len(states))
        sp.set("transitions", len(transitions))
        _add_attributed_states(
            rule_states, len(states), "copying_nfa",
            structural=(("(seed)", 1), ("(accept)", 1)),
        )
        obs.add("ptime.product_transitions", len(transitions))
        # Distribution registries (separate from the exact counters):
        # product sizes and build latency feed the p50/p99 summaries.
        obs.observe("ptime.product_size", len(states))
        if obs.enabled():
            obs.observe("ptime.copying_product.ms", sp.duration_ns / 1e6)
        if productive is not None:
            sp.set("pruned", pruned)
            obs.add("ptime.product_pruned", pruned)
        obs.debug("ptime.copying", "copying product built",
                  states=len(states), transitions=len(transitions))
        return NFA(states, alphabet, transitions, initial, {_ACC})


def is_copying(
    transducer: TopDownTransducer, nta: NTA, prefilter: "PrefilterArg" = None
) -> bool:
    """Lemma 4.9: PTIME test whether the transducer copies over ``L(nta)``."""
    summary = _resolve_prefilter(transducer, nta, prefilter)
    with obs.span("ptime.copying") as sp:
        if summary is not None and summary.copy_free:
            # Every realizable rule has at most one text-productive
            # frontier position, so neither Lemma 4.5 condition
            # (divergence, doubling) can reach two text leaves.
            sp.set("verdict", False)
            _log_skip("is_copying", "copy-degree", max_copy_degree=summary.max_copy_degree)
            obs.info("ptime.copying", "copying decided", copying=False, product_states=0)
            return False
        product = copying_nfa(transducer, nta, prefilter=summary if summary is not None else False)
        with obs.span("ptime.emptiness") as sp_empty:
            sp_empty.set("automaton", "copying_nfa")
            empty = product.is_empty()
        if obs.enabled():
            obs.observe("ptime.emptiness.ms", sp_empty.duration_ns / 1e6)
        sp.set("verdict", not empty)
        obs.info("ptime.copying", "copying decided",
                 copying=not empty, product_states=len(product.states))
        return not empty


def copying_witness_path(
    transducer: TopDownTransducer, nta: NTA, prefilter: "PrefilterArg" = None
) -> Optional[Tuple[str, ...]]:
    """A text path witnessing copying (labels ending in ``text``), or
    ``None`` when the transducer does not copy over ``L(nta)``."""
    summary = _resolve_prefilter(transducer, nta, prefilter)
    if summary is not None and summary.copy_free:
        _log_skip("copying_witness_path", "copy-degree")
        return None
    word = copying_nfa(
        transducer, nta, prefilter=summary if summary is not None else False
    ).shortest_word()
    if word is None:
        return None
    return tuple(str(symbol) for symbol in word)


# ---------------------------------------------------------------------------
# Counter-example tree languages (Lemma 4.10 and the copying analogue)
# ---------------------------------------------------------------------------

_D = ("d",)  # "don't care" state of the witness NTAs


def _pattern_nfa(states_before_after: Sequence[State], wildcard: State) -> NFA:
    """NFA for ``wildcard* s1 wildcard* s2 ... wildcard*`` — the shape of
    all horizontal languages in the witness automata."""
    n = len(states_before_after)
    transitions: List[Tuple[State, State, State]] = []
    for i in range(n + 1):
        transitions.append((i, wildcard, i))
    for i, symbol in enumerate(states_before_after):
        transitions.append((i, symbol, i + 1))
    return NFA(range(n + 1), set(states_before_after) | {wildcard}, transitions, 0, {n})


def _union_patterns(patterns: List[NFA], wildcard: State) -> Optional[NFA]:
    if not patterns:
        return None
    from ..strings.nfa import union_nfa

    result = patterns[0]
    for nfa in patterns[1:]:
        result = union_nfa(result, nfa)
    return result


def copying_nta(
    transducer: TopDownTransducer, alphabet: Optional[Iterable[str]] = None
) -> NTA:
    """An NTA accepting exactly the trees on which the transducer copies
    (operational condition of Lemma 4.5).

    States: ``(q1, q2, flag)`` pairs simulating two path runs down the
    marked path (flag 1 once distinct or doubled), plus a wildcard
    state for the rest of the tree.  Polynomial in ``|T|``.

    ``alphabet`` is the label universe of the trees considered (pass the
    schema's alphabet union the transducer's when intersecting).
    """
    alphabet = set(alphabet) if alphabet is not None else set(transducer.alphabet)
    alphabet |= set(transducer.alphabet)
    pair_states: Set[State] = set()
    delta: Dict[Tuple[State, str], NFA] = {}

    eps_nfa = NFA([0], [], [], 0, [0])
    delta[(_D, TEXT)] = eps_nfa
    for symbol in alphabet:
        delta[(_D, symbol)] = _pattern_nfa([], _D)

    initial = (transducer.initial, transducer.initial, 0)
    work: List[Tuple[str, str, int]] = [initial]
    seen: Set[Tuple[str, str, int]] = {initial}
    attribute = obs.enabled()
    rule_states: Dict[Tuple[str, str], int] = {}
    while work:
        q1, q2, flag = work.pop()
        pair_states.add((q1, q2, flag))
        if flag == 1 and q1 in transducer.text_states and q2 in transducer.text_states:
            delta[((q1, q2, flag), TEXT)] = eps_nfa
        for symbol in alphabet:
            patterns: List[NFA] = []
            for t1, t2, new_flag in _pair_steps(transducer, q1, q2, symbol, flag):
                target = (t1, t2, new_flag)
                patterns.append(_pattern_nfa([target], _D))
                if target not in seen:
                    seen.add(target)
                    work.append(target)
                    if attribute:
                        rule = (q1, symbol)
                        rule_states[rule] = rule_states.get(rule, 0) + 1
            combined = _union_patterns(patterns, _D)
            if combined is not None:
                delta[((q1, q2, flag), symbol)] = combined
    states = pair_states | {_D, initial}
    _add_attributed_states(
        rule_states, len(states), "copying_nta",
        structural=(("(seed)", 1), ("(sink)", 1)),
    )
    return NTA(states, alphabet, delta, initial)


def rearranging_nta(
    transducer: TopDownTransducer,
    alphabet: Optional[Iterable[str]] = None,
    violation_filter: Optional[Callable[[str, str, str, str], bool]] = None,
) -> NTA:
    """Lemma 4.10's automaton ``M``: an NTA accepting exactly the trees
    on which the transducer rearranges (condition of Lemma 4.6).

    State shapes (all polynomially many):

    * ``("s", q)`` — on the shared path, runs still agree in state ``q``;
    * ``("p", q1, q2)`` — on the shared path after the order violation
      (the run that will reach the *right* leaf ``v2`` got an earlier
      output slot than the run reaching the *left* leaf ``v1``);
    * ``("f", q)`` — inside the split subtree: some text path run from
      ``q`` must end at a text leaf below;
    * the wildcard ``d``.

    ``violation_filter(state, symbol, q1_next, q2_next)`` — when given —
    restricts *where* the order violation may be introduced: only rules
    ``(state, symbol)`` whose frontier offers ``q2_next`` strictly
    before ``q1_next`` and for which the filter returns ``True`` may
    start a violation.  This localizes rearranging to individual rules
    (used by the :mod:`repro.lint` diagnostics engine).
    """
    with obs.span("ptime.rearranging_nta") as sp:
        result, rule_states = _rearranging_nta_impl(
            transducer, alphabet, violation_filter
        )
        sp.set("states", len(result.states))
        sp.set("rules", len(result.delta))
        obs.observe("ptime.rearranging_nta_size", len(result.states))
        _add_attributed_states(
            rule_states, len(result.states), "rearranging_nta",
            structural=(("(seed)", 1), ("(sink)", 1)),
        )
        return result


def _rearranging_nta_impl(
    transducer: TopDownTransducer,
    alphabet: Optional[Iterable[str]],
    violation_filter: Optional[Callable[[str, str, str, str], bool]],
) -> Tuple[NTA, Dict[Tuple[str, str], int]]:
    alphabet = set(alphabet) if alphabet is not None else set(transducer.alphabet)
    alphabet |= set(transducer.alphabet)
    delta: Dict[Tuple[State, str], NFA] = {}
    states: Set[State] = {_D}
    eps_nfa = NFA([0], [], [], 0, [0])
    delta[(_D, TEXT)] = eps_nfa
    for symbol in alphabet:
        delta[(_D, symbol)] = _pattern_nfa([], _D)

    # Attribution: every s/p/f state is credited to the transducer rule
    # whose expansion first needed it (the initial s-state and ``_D``
    # are the caller's ``(seed)``/``(sink)`` structural roles).
    attribute = obs.enabled()
    rule_states: Dict[Tuple[str, str], int] = {}
    current_rule: List[Optional[Tuple[str, str]]] = [None]

    def credit() -> None:
        rule = current_rule[0]
        if attribute and rule is not None:
            rule_states[rule] = rule_states.get(rule, 0) + 1

    # f-states: reach a copied text value somewhere below.
    f_needed: Set[str] = set()

    def f_state(q: str) -> State:
        if q not in f_needed:
            f_needed.add(q)
            credit()
        return ("f", q)

    # p-states: continue together, or split at the lca.
    p_needed: Set[Tuple[str, str]] = set()

    def p_state(q1: str, q2: str) -> State:
        if (q1, q2) not in p_needed:
            p_needed.add((q1, q2))
            credit()
        return ("p", q1, q2)

    # s-states: agreement prefix.
    s_needed: Set[str] = set()

    def s_state(q: str) -> State:
        if q not in s_needed:
            s_needed.add(q)
            credit()
        return ("s", q)

    initial = s_state(transducer.initial)

    # Build rules lazily until no new states appear.
    done_s: Set[str] = set()
    done_p: Set[Tuple[str, str]] = set()
    done_f: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for q in list(s_needed - done_s):
            done_s.add(q)
            changed = True
            for symbol in alphabet:
                current_rule[0] = (q, symbol)
                frontier = transducer.rhs_frontier_states(q, symbol)
                if not frontier:
                    continue
                patterns: List[NFA] = []
                for q_next in set(frontier):
                    patterns.append(_pattern_nfa([s_state(q_next)], _D))
                # Order violation: q2' strictly before q1' among the
                # frontier state occurrences (as a subsequence q2'.q1').
                # Two sub-cases: the violation happens strictly above the
                # lca (continue together in a p-state), or at the lca
                # itself (split immediately: the run for the *left* leaf
                # v1 continues in an earlier child than the run for v2).
                seen_pairs = set()
                for j1 in range(len(frontier)):
                    for j2 in range(j1 + 1, len(frontier)):
                        q2_next, q1_next = frontier[j1], frontier[j2]
                        if (q1_next, q2_next) in seen_pairs:
                            continue
                        seen_pairs.add((q1_next, q2_next))
                        if violation_filter is not None and not violation_filter(
                            q, symbol, q1_next, q2_next
                        ):
                            continue
                        patterns.append(_pattern_nfa([p_state(q1_next, q2_next)], _D))
                        patterns.append(
                            _pattern_nfa([f_state(q1_next), f_state(q2_next)], _D)
                        )
                delta[(s_state(q), symbol)] = _union_patterns(patterns, _D)
        for (q1, q2) in list(p_needed - done_p):
            done_p.add((q1, q2))
            changed = True
            for symbol in alphabet:
                current_rule[0] = (q1, symbol)
                targets1 = set(transducer.rhs_frontier_states(q1, symbol))
                targets2 = set(transducer.rhs_frontier_states(q2, symbol))
                patterns = []
                for t1 in targets1:
                    for t2 in targets2:
                        # continue together toward the lca
                        patterns.append(_pattern_nfa([p_state(t1, t2)], _D))
                        # or split here: v1 into an earlier child than v2
                        patterns.append(_pattern_nfa([f_state(t1), f_state(t2)], _D))
                combined = _union_patterns(patterns, _D)
                if combined is not None:
                    delta[(("p", q1, q2), symbol)] = combined
        for q in list(f_needed - done_f):
            done_f.add(q)
            changed = True
            if q in transducer.text_states:
                delta[(("f", q), TEXT)] = eps_nfa
            for symbol in alphabet:
                current_rule[0] = (q, symbol)
                patterns = []
                for q_next in set(transducer.rhs_frontier_states(q, symbol)):
                    patterns.append(_pattern_nfa([f_state(q_next)], _D))
                combined = _union_patterns(patterns, _D)
                if combined is not None:
                    delta[(("f", q), symbol)] = combined

    states |= {("s", q) for q in done_s}
    states |= {("p", q1, q2) for (q1, q2) in done_p}
    states |= {("f", q) for q in done_f}
    return NTA(states, alphabet, delta, initial), rule_states


def _productive_site_filter(
    summary: "DataflowSummary",
) -> Optional[Callable[[str, str, str, str], bool]]:
    """A ``violation_filter`` admitting only sites the dataflow summary
    cannot rule out: the rule fires on some valid document and both
    branch states can route text to the output.  Exact for emptiness
    checks against the schema: a product witness makes the site's rule
    fire and both branches reach text on a valid document, so any
    witnessed site passes the filter."""
    if not (summary.has_pass("reachability") and summary.has_pass("copy-degree")):
        return None
    realizable = summary.realizable
    productive = summary.text_productive

    def allowed(state: str, symbol: str, q1_next: str, q2_next: str) -> bool:
        return (
            (state, symbol) in realizable
            and q1_next in productive
            and q2_next in productive
        )

    return allowed


def is_rearranging(
    transducer: TopDownTransducer, nta: NTA, prefilter: "PrefilterArg" = None
) -> bool:
    """Lemma 4.10: PTIME test whether the transducer rearranges over
    ``L(nta)``."""
    summary = _resolve_prefilter(transducer, nta, prefilter)
    with obs.span("ptime.rearranging") as sp:
        if summary is not None and summary.has_pass("text-flow") and summary.order_safe:
            # No realizable rule carries two text-productive frontier
            # positions, so no Lemma 4.6 order violation can ever put
            # text into the output through two branches.
            sp.set("verdict", False)
            _log_skip("is_rearranging", "text-flow")
            obs.info("ptime.rearranging", "rearranging decided",
                     rearranging=False, product_states=0)
            return False
        violation_filter = _productive_site_filter(summary) if summary is not None else None
        universe = set(nta.alphabet) | set(transducer.alphabet)
        witness_nta = rearranging_nta(transducer, universe, violation_filter)
        with obs.span("ptime.schema_product") as sp_product:
            product = intersect_nta(witness_nta, nta)
            sp_product.set("states", len(product.states))
        obs.observe("ptime.schema_product_size", len(product.states))
        if obs.enabled():
            obs.observe("ptime.schema_product.ms", sp_product.duration_ns / 1e6)
        with obs.span("ptime.emptiness") as sp_empty:
            sp_empty.set("automaton", "rearranging_product")
            empty = product.is_empty()
        if obs.enabled():
            obs.observe("ptime.emptiness.ms", sp_empty.duration_ns / 1e6)
        sp.set("verdict", not empty)
        obs.info("ptime.rearranging", "rearranging decided",
                 rearranging=not empty, product_states=len(product.states))
        return not empty


def counter_example_nta(transducer: TopDownTransducer, nta: NTA) -> NTA:
    """The regular language of counter-examples (Section 7): trees of
    ``L(nta)`` on which the transducer copies or rearranges — i.e., is
    not text-preserving (Theorem 3.3)."""
    with obs.span("ptime.counter_example_nta") as sp:
        universe = set(nta.alphabet) | set(transducer.alphabet)
        bad = union_nta(
            copying_nta(transducer, universe), rearranging_nta(transducer, universe)
        )
        product = intersect_nta(bad, nta)
        sp.set("states", len(product.states))
        return product


def is_text_preserving(
    transducer: TopDownTransducer, nta: NTA, prefilter: "PrefilterArg" = None
) -> bool:
    """Theorem 4.11: PTIME decision whether the (admissible) top-down
    transducer is text-preserving over ``L(nta)``."""
    summary = _resolve_prefilter(transducer, nta, prefilter)
    resolved: "PrefilterArg" = summary if summary is not None else False
    return not is_copying(transducer, nta, prefilter=resolved) and not is_rearranging(
        transducer, nta, prefilter=resolved
    )


def counter_example(
    transducer: TopDownTransducer, nta: NTA, prefilter: "PrefilterArg" = None
) -> Optional[Tree]:
    """A smallest value-unique tree of ``L(nta)`` on which the
    transducer is not text-preserving, or ``None`` when it is
    text-preserving.

    The witness is made value-unique, so
    ``text_values(T(t))`` is concretely not a subsequence of
    ``text_values(t)``.

    The pre-filter only ever skips the construction outright (when the
    summary proves text preservation, the answer is ``None``); it never
    alters the union NTA, so the chosen witness tree is byte-identical
    with pre-filtering off.
    """
    summary = _resolve_prefilter(transducer, nta, prefilter)
    if (
        summary is not None
        and summary.copy_free
        and summary.has_pass("text-flow")
        and summary.order_safe
    ):
        _log_skip("counter_example", "copy-degree+text-flow")
        return None
    witness = counter_example_nta(transducer, nta).witness()
    if witness is None:
        return None
    return make_value_unique(witness)


# ---------------------------------------------------------------------------
# Explainable verdicts (the witness internals behind the booleans)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CopyingReport:
    """Why the transducer copies over the schema (Lemma 4.5).

    Attributes
    ----------
    path:
        A shortest witness text path, ancestor labels ending ``text``.
    runs:
        The distinct path runs of the transducer on ``path`` (state
        sequences, one state longer than the label part of the path).
    rule:
        The offending rule ``(state, label)``: where two runs diverge
        (condition (1) of Lemma 4.5), or the doubling rule whose rhs
        mentions the successor state twice (condition (2)).
    kind:
        ``"divergence"`` or ``"doubling"``.
    witness:
        A smallest value-unique schema tree on which the transducer
        copies, or ``None`` when the schema language below the path is
        degenerate.
    """

    path: Tuple[str, ...]
    runs: Tuple[Tuple[str, ...], ...]
    rule: Tuple[str, str]
    kind: str
    witness: Optional[Tree]


def copying_counter_example(transducer: TopDownTransducer, nta: NTA) -> Optional[Tree]:
    """A smallest value-unique schema tree on which the transducer
    *copies* (not merely fails preservation), or ``None``."""
    universe = set(nta.alphabet) | set(transducer.alphabet)
    witness = intersect_nta(copying_nta(transducer, universe), nta).witness()
    if witness is None:
        return None
    return make_value_unique(witness)


def copying_report(
    transducer: TopDownTransducer, nta: NTA, prefilter: "PrefilterArg" = None
) -> Optional[CopyingReport]:
    """Localize copying: the witness path, its path runs, and the rule
    to blame — or ``None`` when the transducer does not copy over
    ``L(nta)``.

    With a pre-filter the report is byte-identical: a ``copy_free``
    summary proves the answer is ``None``, and in-product pruning
    (see :func:`copying_nfa`) leaves the shortest witness unchanged.
    """
    summary = _resolve_prefilter(transducer, nta, prefilter)
    if summary is not None and summary.copy_free:
        _log_skip("copying_report", "copy-degree")
        return None
    word = copying_nfa(
        transducer, nta, prefilter=summary if summary is not None else False
    ).shortest_word()
    if word is None:
        return None
    path = tuple(str(symbol) for symbol in word)
    labels = path[:-1]
    runs = tuple(sorted(set(transducer.path_runs(labels))))
    rule: Optional[Tuple[str, str]] = None
    kind = "doubling"
    if len(runs) >= 2:
        # Condition (1): two distinct path runs.  Blame the rule at the
        # earliest divergence point over all run pairs.
        best: Optional[Tuple[int, Tuple[str, str]]] = None
        for i1 in range(len(runs)):
            for i2 in range(i1 + 1, len(runs)):
                r1, r2 = runs[i1], runs[i2]
                for i in range(1, len(r1)):
                    if r1[i] != r2[i]:
                        if best is None or i < best[0]:
                            best = (i, (r1[i - 1], labels[i - 1]))
                        break
        if best is not None:
            kind = "divergence"
            rule = best[1]
    if rule is None:
        # Condition (2): a doubling rule along some (single) run.
        for run in runs:
            for i in range(1, len(run)):
                if transducer.rhs_state_multiplicity(run[i - 1], labels[i - 1], run[i]) >= 2:
                    rule = (run[i - 1], labels[i - 1])
                    break
            if rule is not None:
                break
    assert rule is not None, "copying NFA accepted a path with no Lemma 4.5 evidence"
    return CopyingReport(
        path=path,
        runs=runs,
        rule=rule,
        kind=kind,
        witness=copying_counter_example(transducer, nta),
    )


@dataclass(frozen=True)
class RearrangingFinding:
    """One rule-level cause of rearranging (Lemma 4.6).

    ``rule``'s right-hand-side frontier offers ``pair[0]`` in an
    earlier output slot than ``pair[1]``, yet on some schema tree the
    run through ``pair[0]`` reaches a text leaf *to the right of* the
    leaf reached through ``pair[1]`` — so their values swap order in
    the output.  ``witness`` is a smallest value-unique schema tree
    exhibiting exactly this rule's violation.
    """

    rule: Tuple[str, str]
    pair: Tuple[str, str]
    witness: Tree


def rearranging_counter_example(transducer: TopDownTransducer, nta: NTA) -> Optional[Tree]:
    """A smallest value-unique schema tree on which the transducer
    *rearranges*, or ``None``."""
    universe = set(nta.alphabet) | set(transducer.alphabet)
    witness = intersect_nta(rearranging_nta(transducer, universe), nta).witness()
    if witness is None:
        return None
    return make_value_unique(witness)


def rearranging_findings(
    transducer: TopDownTransducer, nta: NTA, prefilter: "PrefilterArg" = None
) -> Tuple[RearrangingFinding, ...]:
    """All rule-level causes of rearranging over ``L(nta)``, smallest
    witnesses first; empty when the transducer does not rearrange.

    Runs the Lemma 4.10 construction once per candidate ``(rule,
    frontier-pair)`` with the order violation pinned to that site, so
    every returned finding is independently witnessed.

    The pre-filter drops only candidate sites whose pinned run is
    provably empty (unrealizable rule, or a branch state that can never
    route text to the output), so the findings — including each
    witness — are byte-identical with pre-filtering off.
    """
    summary = _resolve_prefilter(transducer, nta, prefilter)
    if summary is not None and summary.has_pass("text-flow") and summary.order_safe:
        _log_skip("rearranging_findings", "text-flow")
        return ()
    site_filter = _productive_site_filter(summary) if summary is not None else None
    universe = set(nta.alphabet) | set(transducer.alphabet)
    if intersect_nta(rearranging_nta(transducer, universe, site_filter), nta).is_empty():
        return ()
    findings: List[RearrangingFinding] = []
    for (state, symbol), _rhs in sorted(transducer.rules.items()):
        frontier = transducer.rhs_frontier_states(state, symbol)
        pairs: Set[Tuple[str, str]] = set()
        for j1 in range(len(frontier)):
            for j2 in range(j1 + 1, len(frontier)):
                pairs.add((frontier[j2], frontier[j1]))  # (q1_next, q2_next)
        for q1_next, q2_next in sorted(pairs):
            if site_filter is not None and not site_filter(
                state, symbol, q1_next, q2_next
            ):
                obs.add("ptime.rearranging_sites_pruned")
                continue
            def pinned(q: str, a: str, t1: str, t2: str) -> bool:
                return (q, a) == (state, symbol) and (t1, t2) == (q1_next, q2_next)

            localized = rearranging_nta(transducer, universe, violation_filter=pinned)
            witness = intersect_nta(localized, nta).witness()
            if witness is not None:
                findings.append(
                    RearrangingFinding(
                        rule=(state, symbol),
                        pair=(q2_next, q1_next),
                        witness=make_value_unique(witness),
                    )
                )
    findings.sort(key=lambda f: (f.witness.size, f.rule, f.pair))
    return tuple(findings)
