"""Brute-force bounded oracle for text-preservation.

Enumerates the schema language up to a size bound, runs the
transduction on (value-unique versions of) every member, and applies
the semantic definitions of Section 3 directly.  The oracle is
complete only up to the bound, but the decision procedures it
cross-validates construct small witnesses, so disagreement within the
bound would expose a bug in either side.  Every decision-procedure test
in this repository is backed by an oracle comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..automata.enumerate import enumerate_trees
from ..automata.nta import NTA
from ..trees.substitution import make_value_unique
from ..trees.tree import Tree
from .characterization import (
    Transduction,
    is_copying_on,
    is_rearranging_on,
    is_text_preserving_on,
)

__all__ = ["BoundedVerdict", "bounded_oracle", "oracle_counter_example"]


@dataclass(frozen=True)
class BoundedVerdict:
    """Result of a bounded brute-force check.

    ``copying`` / ``rearranging`` / ``text_preserving`` describe the
    behaviour over all enumerated trees; ``witness`` is a value-unique
    tree violating text-preservation when one exists within the bound;
    ``trees_checked`` reports the enumeration effort.
    """

    copying: bool
    rearranging: bool
    text_preserving: bool
    witness: Optional[Tree]
    trees_checked: int


def bounded_oracle(
    transduction: Transduction,
    nta: NTA,
    max_size: int = 8,
    max_count: Optional[int] = 4000,
) -> BoundedVerdict:
    """Check the Section 3 semantic properties of ``transduction`` over
    all members of ``L(nta)`` with at most ``max_size`` nodes."""
    copying = False
    rearranging = False
    witness: Optional[Tree] = None
    checked = 0
    for t in enumerate_trees(nta, max_size, max_count):
        checked += 1
        if not copying and is_copying_on(transduction, t):
            copying = True
        if not rearranging and is_rearranging_on(transduction, t):
            rearranging = True
        if witness is None:
            unique = make_value_unique(t)
            if not is_text_preserving_on(transduction, unique):
                witness = unique
    return BoundedVerdict(
        copying=copying,
        rearranging=rearranging,
        text_preserving=witness is None,
        witness=witness,
        trees_checked=checked,
    )


def oracle_counter_example(
    transduction: Transduction,
    nta: NTA,
    max_size: int = 8,
    max_count: Optional[int] = 4000,
) -> Optional[Tree]:
    """The first (smallest) value-unique tree in the bounded enumeration
    on which the transduction is not text-preserving."""
    for t in enumerate_trees(nta, max_size, max_count):
        unique = make_value_unique(t)
        if not is_text_preserving_on(transduction, unique):
            return unique
    return None
