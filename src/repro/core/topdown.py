"""Top-down uniform tree transducers (paper, Definition 4.1).

A transducer ``T = (Q, Sigma ∪ {text}, q0, R)`` rewrites a tree top
down: a rule ``(q, a) -> h`` replaces a node labelled ``a`` processed
in state ``q`` by the hedge ``h``, whose state-labelled leaves recurse
on *all* children of the node ("uniform": every occurrence of a state
processes the full child sequence).  Rules ``(q, text) -> text`` copy
the text value of a text leaf; without such a rule the value is
dropped.

Right-hand sides are hedges over the output alphabet with
:class:`StateCall` leaves.  They can be written in an extended term
syntax where identifiers that name states become state calls::

    TopDownTransducer(
        states={"q0", "qsel", "q"},
        rules={
            ("q0", "recipes"): "recipes(q0)",
            ("q0", "recipe"): "recipe(qsel)",
            ("qsel", "description"): "description(q)",
            ("q", "text"): "text",
        },
        initial="q0",
    )

is Example 4.2 (abridged).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple, Union

from ..trees.parser import TreeSyntaxError, parse_hedge
from ..trees.tree import Hedge, Tree

__all__ = ["TopDownTransducer", "StateCall", "OutputNode", "RuleHedge"]

#: The keyword used on both sides of text rules.
_TEXT = "text"


class StateCall:
    """A state-labelled leaf in a rule's right-hand side."""

    __slots__ = ("state",)

    def __init__(self, state: str) -> None:
        self.state = state

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StateCall) and other.state == self.state

    def __hash__(self) -> int:
        return hash(("StateCall", self.state))

    def __repr__(self) -> str:
        return "StateCall(%r)" % self.state

    @property
    def size(self) -> int:
        return 1


class OutputNode:
    """A ``Sigma``-labelled node in a rule's right-hand side."""

    __slots__ = ("label", "children")

    def __init__(self, label: str, children: Iterable[Union["OutputNode", StateCall]] = ()) -> None:
        self.label = label
        self.children: Tuple[Union[OutputNode, StateCall], ...] = tuple(children)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, OutputNode)
            and other.label == self.label
            and other.children == self.children
        )

    def __hash__(self) -> int:
        return hash(("OutputNode", self.label, self.children))

    def __repr__(self) -> str:
        if not self.children:
            return "OutputNode(%r)" % self.label
        return "OutputNode(%r, %r)" % (self.label, list(self.children))

    @property
    def size(self) -> int:
        return 1 + sum(child.size for child in self.children)


#: A rule right-hand side: a hedge of output items.
RuleHedge = Tuple[Union[OutputNode, StateCall], ...]


def _parse_rhs(source: str, states: FrozenSet[str]) -> RuleHedge:
    """Parse a right-hand side, turning leaves named after states into
    state calls."""
    hedge = parse_hedge(source)

    def convert(t: Tree) -> Union[OutputNode, StateCall]:
        if t.is_text:
            raise TreeSyntaxError(
                "rule right-hand sides contain no Text-values (got %r)" % t.label
            )
        if t.label in states:
            if t.children:
                raise TreeSyntaxError("state %r cannot have children in a rhs" % t.label)
            return StateCall(t.label)
        return OutputNode(t.label, [convert(c) for c in t.children])

    return tuple(convert(t) for t in hedge)


def _rhs_states(h: RuleHedge) -> Iterator[str]:
    for item in h:
        if isinstance(item, StateCall):
            yield item.state
        else:
            yield from _rhs_states(item.children)


def _rhs_frontier(h: RuleHedge) -> Iterator[Union[str, StateCall]]:
    """Frontier of a rhs hedge: labels and state calls at leaves, in order."""
    for item in h:
        if isinstance(item, StateCall):
            yield item
        elif not item.children:
            yield item.label
        else:
            yield from _rhs_frontier(item.children)


def _rhs_labels(h: RuleHedge) -> Iterator[str]:
    for item in h:
        if isinstance(item, OutputNode):
            yield item.label
            yield from _rhs_labels(item.children)


class TopDownTransducer:
    """A top-down uniform tree transducer (paper, Definition 4.1).

    Parameters
    ----------
    states:
        The state set ``Q``.
    rules:
        Mapping ``(state, symbol) -> rhs``.  For ``symbol == "text"``
        the rhs must be the literal string ``"text"`` (copy the value);
        otherwise the rhs is a hedge given as a term-syntax string or a
        :data:`RuleHedge`.
    initial:
        The initial state ``q0``.  Its rules must be single trees whose
        root is a ``Sigma``-label, so output is always a tree.
    """

    __slots__ = ("states", "initial", "rules", "text_states", "alphabet")

    def __init__(
        self,
        states: Iterable[str],
        rules: Mapping[Tuple[str, str], Union[str, RuleHedge]],
        initial: str,
    ) -> None:
        self.states: FrozenSet[str] = frozenset(states)
        if initial not in self.states:
            raise ValueError("initial state %r not among states" % (initial,))
        self.initial = initial
        self.rules: Dict[Tuple[str, str], RuleHedge] = {}
        self.text_states: Set[str] = set()
        alphabet: Set[str] = set()
        for (state, symbol), rhs in rules.items():
            if state not in self.states:
                raise ValueError("rule for unknown state %r" % (state,))
            if symbol == _TEXT:
                if rhs != _TEXT:
                    raise ValueError(
                        "the rhs of a (q, text) rule must be the keyword 'text', got %r" % (rhs,)
                    )
                self.text_states.add(state)
                continue
            if isinstance(rhs, str):
                rhs = _parse_rhs(rhs, self.states)
            else:
                rhs = tuple(rhs)
            unknown = set(_rhs_states(rhs)) - self.states
            if unknown:
                raise ValueError("rhs of (%r, %r) uses unknown states %r" % (state, symbol, unknown))
            if state == initial:
                if len(rhs) != 1 or not isinstance(rhs[0], OutputNode):
                    raise ValueError(
                        "initial-state rules must produce a single Sigma-rooted tree"
                    )
            self.rules[(state, symbol)] = rhs
            alphabet.add(symbol)
            alphabet.update(_rhs_labels(rhs))
        self.alphabet: FrozenSet[str] = frozenset(alphabet)

    # -- introspection ----------------------------------------------------

    def rhs(self, state: str, symbol: str) -> Optional[RuleHedge]:
        """The rule right-hand side for ``(state, symbol)``, if any."""
        return self.rules.get((state, symbol))

    def copies_text_in(self, state: str) -> bool:
        """Whether ``(state, text) -> text`` is a rule."""
        return state in self.text_states

    @property
    def size(self) -> int:
        """The paper's ``|T| = |Q| + |R|``."""
        return (
            len(self.states)
            + sum(sum(item.size for item in rhs) for rhs in self.rules.values())
            + len(self.text_states)
        )

    def __repr__(self) -> str:
        return "TopDownTransducer(states=%d, rules=%d)" % (
            len(self.states),
            len(self.rules) + len(self.text_states),
        )

    # -- semantics -----------------------------------------------------------

    def apply_state(self, state: str, t: Tree) -> Hedge:
        """The translation ``T^q(t)`` (Definition 4.1, items (i)-(iii))."""
        if t.is_text:
            if state in self.text_states:
                return (t,)
            return ()
        rhs = self.rules.get((state, t.label))
        if rhs is None:
            return ()
        return self._instantiate(rhs, t.children)

    def apply_hedge(self, state: str, h: Hedge) -> Hedge:
        """``T^q`` extended to hedges: concatenation of the per-tree
        translations."""
        out: List[Tree] = []
        for t in h:
            out.extend(self.apply_state(state, t))
        return tuple(out)

    def _instantiate(self, rhs: RuleHedge, children: Hedge) -> Hedge:
        out: List[Tree] = []
        for item in rhs:
            if isinstance(item, StateCall):
                out.extend(self.apply_hedge(item.state, children))
            else:
                out.append(Tree(item.label, self._instantiate(item.children, children)))
        return tuple(out)

    def apply(self, t: Tree) -> Hedge:
        """The transformation ``T(t) = T^{q0}(t)`` as a hedge."""
        return self.apply_state(self.initial, t)

    def transform(self, t: Tree) -> Tree:
        """``T(t)`` as a tree.

        Raises :class:`ValueError` when the result is not a single tree
        (which can only happen if no initial rule applied at the root).
        """
        result = self.apply(t)
        if len(result) != 1:
            raise ValueError(
                "transduction produced a hedge of %d trees; no initial rule matched the root?"
                % len(result)
            )
        return result[0]

    def __call__(self, t: Tree) -> Tree:
        return self.transform(t)

    # -- reduction ---------------------------------------------------------------

    def reachable_states(self) -> FrozenSet[str]:
        """States reachable from ``q0`` through rule right-hand sides."""
        seen: Set[str] = {self.initial}
        stack = [self.initial]
        while stack:
            state = stack.pop()
            for (source, _symbol), rhs in self.rules.items():
                if source != state:
                    continue
                for target in _rhs_states(rhs):
                    if target not in seen:
                        seen.add(target)
                        stack.append(target)
        return frozenset(seen)

    def is_reduced(self) -> bool:
        """Whether all states are reachable and no rule has an empty
        rhs (such rules are useless: an absent rule behaves the same)."""
        if any(not rhs for rhs in self.rules.values()):
            return False
        return self.reachable_states() == self.states

    def reduce(self) -> "TopDownTransducer":
        """An equivalent reduced transducer (drop unreachable states and
        useless rules)."""
        reachable = self.reachable_states()
        rules: Dict[Tuple[str, str], Union[str, RuleHedge]] = {}
        for (state, symbol), rhs in self.rules.items():
            if state in reachable and rhs:
                rules[(state, symbol)] = rhs
        for state in self.text_states & reachable:
            rules[(state, _TEXT)] = _TEXT
        return TopDownTransducer(reachable, rules, self.initial)

    # -- path runs (Section 4.2) ------------------------------------------------

    def path_runs(self, labels: Tuple[str, ...]) -> Iterator[Tuple[str, ...]]:
        """All path runs of the transducer on the text path
        ``labels . gamma`` (Lemma 4.5): sequences ``q1 .. qn q_{n+1}``
        with ``q1 = q0``, each ``q_{i+1}`` occurring at a leaf of
        ``rhs(q_i, a_i)``, and ``(q_{n+1}, text) -> text`` a rule.

        ``labels`` is the ``Sigma``-part of the text path.
        """
        def extend(prefix: Tuple[str, ...], index: int) -> Iterator[Tuple[str, ...]]:
            state = prefix[-1]
            if index == len(labels):
                if state in self.text_states:
                    yield prefix
                return
            rhs = self.rules.get((state, labels[index]))
            if rhs is None:
                return
            for target in set(_rhs_states(rhs)):
                yield from extend(prefix + (target,), index + 1)

        yield from extend((self.initial,), 0)

    def rhs_state_multiplicity(self, state: str, symbol: str, target: str) -> int:
        """How many leaves of ``rhs(state, symbol)`` carry ``target``
        (condition (2) of Lemma 4.5 asks for >= 2)."""
        rhs = self.rules.get((state, symbol))
        if rhs is None:
            return 0
        return sum(1 for q in _rhs_states(rhs) if q == target)

    def rhs_frontier_states(self, state: str, symbol: str) -> Tuple[str, ...]:
        """The state calls on the frontier of ``rhs(state, symbol)``,
        in document order (used by the rearranging test, Lemma 4.6)."""
        rhs = self.rules.get((state, symbol))
        if rhs is None:
            return ()
        return tuple(
            item.state for item in _rhs_frontier(rhs) if isinstance(item, StateCall)
        )
