"""Section 7: maximal safe sub-schemas and stronger properties.

The proof technique of Sections 4-5 shows that the trees on which a
transducer is *not* text-preserving form a regular language (the
counter-example language).  Regular languages are closed under
complement, so the *largest sub-language of the schema on which the
transducer is text-preserving* is again regular and computable:

    safe(T, N)  =  L(N) ∖ counter_examples(T, N).

The module handles both transducer families (top-down uniform and DTL)
and also implements the paper's closing extension: requiring, on top of
text-preservation, that no text value below a node with a *protected
label* is ever deleted.  For top-down transducers the protection test
runs on path automata (a containment of word languages); for DTL it is
one more MSO sentence.  Either way the violating trees are regular, so
protection folds into the same maximal-sub-schema construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from .. import obs
from ..automata.bta import BTA, intersect_bta, union_bta
from ..automata.fcns import bta_to_nta, nta_to_bta, valid_encoding_bta
from ..automata.nta import NTA, TEXT
from ..mso.ast import And, ExistsFO, Formula, Lab, Not, Or
from ..mso.compile import compile_mso
from ..mso.relations import is_root, proper_ancestor
from ..strings.dfa import determinize
from ..strings.nfa import NFA, product_nfa
from ..trees.substitution import make_value_unique
from ..trees.tree import Tree
from .dtl import DTLTransducer
from .dtl_analysis import analysis_alphabet, counter_example_bta, reach_formula
from .topdown import TopDownTransducer
from .topdown_analysis import (
    counter_example_nta,
    path_automaton,
    transducer_path_automaton,
)

__all__ = [
    "maximal_safe_subschema",
    "protection_violation_nta",
    "deletes_protected_text",
    "protected_violation_path",
    "protected_violation_witness",
    "ProtectionReport",
    "protection_report",
    "is_text_preserving_with_protection",
    "path_marked_nta",
]

Transducer = Union[TopDownTransducer, DTLTransducer]


def _counter_example_bta_any(transducer: Transducer, nta: NTA) -> BTA:
    """The counter-example language of either transducer family, as a
    BTA over plain labels."""
    if isinstance(transducer, TopDownTransducer):
        return nta_to_bta(counter_example_nta(transducer, nta))
    return counter_example_bta(transducer, nta)


def maximal_safe_subschema(
    transducer: Transducer,
    nta: NTA,
    protected_labels: Iterable[str] = (),
) -> NTA:
    """The largest sub-language of ``L(nta)`` on which the transducer is
    text-preserving — and, when ``protected_labels`` is nonempty, never
    deletes text below a node carrying one of those labels.

    Exponential in the worst case (one complementation), as expected:
    the result is ``L(N) ∖ (counter-examples ∪ protection violations)``.
    """
    with obs.span("safety.subschema") as sp:
        alphabet = tuple(sorted(set(nta.alphabet)))
        with obs.span("safety.counter_examples"):
            bad = _counter_example_bta_any(transducer, nta)
        for label in sorted(set(protected_labels)):
            violations = protection_violation_nta(transducer, nta, label)
            bad = union_bta(bad, nta_to_bta(violations))
        # Complement relative to valid single-tree encodings over the
        # schema's alphabet, then restrict to the schema.
        with obs.span("safety.complement") as comp:
            complement = bad.restrict_alphabet(set(alphabet) | {TEXT}).complement()
            comp.set("states", len(complement.states))
            obs.add("safety.complement_states", len(complement.states))
        valid = valid_encoding_bta(alphabet)
        safe = intersect_bta(intersect_bta(complement, valid), nta_to_bta(nta)).trim()
        sp.set("states", len(safe.states))
        obs.info("safety.subschema", "safe sub-schema computed",
                 states=len(safe.states),
                 complement_states=len(complement.states),
                 empty=not safe.states)
        return bta_to_nta(safe, alphabet)


# ---------------------------------------------------------------------------
# Protected labels (§7 extension)
# ---------------------------------------------------------------------------


def _protected_paths_nfa(alphabet: Sequence[str], label: str) -> NFA:
    """Text paths passing through ``label`` as a proper ancestor:
    ``Sigma* label Sigma* text``."""
    transitions: List[Tuple[int, str, int]] = []
    for a in alphabet:
        transitions.append((0, a, 0))
        transitions.append((1, a, 1))
    transitions.append((0, label, 1))
    transitions.append((1, TEXT, 2))
    return NFA({0, 1, 2}, set(alphabet) | {TEXT}, transitions, 0, {2})


def _complement_nfa(nfa: NFA, alphabet: Set[str]) -> NFA:
    return determinize(nfa.without_epsilon(), alphabet=frozenset(alphabet)).complement().to_nfa()


def path_marked_nta(nfa: NFA, alphabet: Iterable[str]) -> NTA:
    """An NTA accepting the trees containing a root-to-text-node path
    whose ancestor word (labels plus the final ``text``) is accepted by
    ``nfa``.

    This is the reusable skeleton behind the Lemma 4.10-style witness
    automata: a guessed marked path simulating a word automaton, with
    wildcard subtrees elsewhere.
    """
    alphabet = set(alphabet)
    nfa = nfa.without_epsilon()
    wildcard = ("d",)
    eps_nfa = NFA([0], [], [], 0, [0])

    def pattern(target) -> NFA:
        transitions = [(0, wildcard, 0), (0, target, 1), (1, wildcard, 1)]
        return NFA([0, 1], {wildcard, target}, transitions, 0, {1})

    delta = {}
    delta[(wildcard, TEXT)] = eps_nfa
    for a in alphabet:
        delta[(wildcard, a)] = NFA([0], {wildcard}, [(0, wildcard, 0)], 0, [0])

    states = {wildcard}
    for p in nfa.states:
        state = ("p", p)
        states.add(state)
        # Reading the node's element label advances the word automaton.
        for a in alphabet:
            targets = nfa.step(p, a)
            if not targets:
                continue
            from ..strings.nfa import union_nfa

            parts = [pattern(("p", target)) for target in targets]
            combined = parts[0]
            for part in parts[1:]:
                combined = union_nfa(combined, part)
            delta[(state, a)] = combined
        # A text node ends the path; the final "text" symbol must lead
        # the word automaton to acceptance.
        if nfa.step(p, TEXT) & nfa.finals:
            delta[(state, TEXT)] = eps_nfa
    return NTA(states, alphabet, delta, ("p", nfa.initial))


def protection_violation_nta(
    transducer: Transducer, nta: NTA, label: str
) -> NTA:
    """The trees of the label universe on which some text value below a
    ``label``-node is deleted by the transducer.

    (Not yet intersected with the schema — compose with
    :func:`repro.automata.nta.intersect_nta` or use
    :func:`maximal_safe_subschema` / :func:`deletes_protected_text`.)
    """
    with obs.span("safety.protection_nta") as sp:
        sp.set("label", label)
        alphabet = sorted(set(nta.alphabet) | {label})
        if isinstance(transducer, TopDownTransducer):
            protected = _protected_paths_nfa(alphabet, label)
            kept = transducer_path_automaton(transducer)
            deleted = _complement_nfa(kept, set(alphabet) | {TEXT})
            violating_paths = product_nfa(protected, deleted)
            obs.add("safety.protection_checks")
            return path_marked_nta(violating_paths, alphabet)
        sentence = _dtl_protection_sentence(transducer, label)
        sigma = tuple(sorted(set(analysis_alphabet(transducer, nta)) | {label}))
        pattern = compile_mso(sentence, sigma)
        plain = pattern.bta.image(lambda lab: lab[0])
        obs.add("safety.protection_checks")
        return bta_to_nta(plain.trim(), alphabet)


def _dtl_protection_sentence(transducer: DTLTransducer, label: str) -> Formula:
    """∃ text node z below a ``label``-node whose value no run copies."""
    x, z, r = "px__", "pz__", "pr__"
    copied_parts = [
        ExistsFO(
            r,
            And(is_root(r), reach_formula(transducer, transducer.initial, q_text, r, z)),
        )
        for q_text in sorted(transducer.text_states)
    ]
    if copied_parts:
        copied: Formula = copied_parts[0]
        for part in copied_parts[1:]:
            copied = Or(copied, part)
        not_copied: Formula = Not(copied)
    else:
        not_copied = Lab(TEXT, z)  # nothing is ever copied
    return ExistsFO(
        x,
        ExistsFO(
            z,
            And(
                Lab(label, x),
                And(proper_ancestor(x, z), And(Lab(TEXT, z), not_copied)),
            ),
        ),
    )


def deletes_protected_text(transducer: Transducer, nta: NTA, label: str) -> bool:
    """Whether some schema tree has a deleted text value below a
    ``label``-node."""
    from ..automata.nta import intersect_nta

    with obs.span("safety.protection") as sp:
        sp.set("label", label)
        violations = protection_violation_nta(transducer, nta, label)
        with obs.span("safety.emptiness"):
            verdict = not intersect_nta(violations, nta).is_empty()
        sp.set("verdict", verdict)
        return verdict


def protected_violation_path(
    transducer: TopDownTransducer, nta: NTA, label: str
) -> Optional[Tuple[str, ...]]:
    """For top-down transducers: a witness text path (ending in
    ``text``) below ``label`` that the transducer deletes on some schema
    tree, or ``None``."""
    with obs.span("safety.protection_path") as sp:
        sp.set("label", label)
        alphabet = sorted(set(nta.alphabet) | {label})
        protected = _protected_paths_nfa(alphabet, label)
        kept = transducer_path_automaton(transducer)
        deleted = _complement_nfa(kept, set(alphabet) | {TEXT})
        schema_paths = path_automaton(nta)
        word = product_nfa(product_nfa(protected, deleted), schema_paths).shortest_word()
        if word is None:
            return None
        return tuple(str(symbol) for symbol in word)


def protected_violation_witness(
    transducer: Transducer, nta: NTA, label: str
) -> Optional[Tree]:
    """A smallest value-unique schema tree on which the transducer
    deletes a text value below a ``label``-node, or ``None``."""
    from ..automata.nta import intersect_nta

    witness = intersect_nta(protection_violation_nta(transducer, nta, label), nta).witness()
    if witness is None:
        return None
    return make_value_unique(witness)


@dataclass(frozen=True)
class ProtectionReport:
    """Why the transducer deletes protected text (§7), localized.

    Attributes
    ----------
    label:
        The protected label.
    path:
        A shortest deleted text path passing below a ``label``-node
        (ancestor labels ending ``text``) that the schema realizes.
    sites:
        The ``(state, label)`` pairs where the last surviving path runs
        die: either no rule (or a deleting rule) applies there, or —
        when the second component is ``"text"`` — the state lacks a
        value-copying text rule.
    witness:
        A smallest value-unique schema tree exhibiting the deletion,
        or ``None``.
    """

    label: str
    path: Tuple[str, ...]
    sites: Tuple[Tuple[str, str], ...]
    witness: Optional[Tree]


def protection_report(
    transducer: TopDownTransducer, nta: NTA, label: str
) -> Optional[ProtectionReport]:
    """Localize a protected-text deletion for a top-down transducer, or
    ``None`` when text below ``label`` is always kept."""
    if not isinstance(transducer, TopDownTransducer):
        raise TypeError(
            "protection_report localizes via path runs and only supports "
            "TopDownTransducer; use deletes_protected_text for DTL"
        )
    path = protected_violation_path(transducer, nta, label)
    if path is None:
        return None
    labels = path[:-1]
    # Walk the path with the set of states reachable by path-run
    # prefixes; the deletion site is where the last survivors die.
    survivors: Set[str] = {transducer.initial}
    sites: Tuple[Tuple[str, str], ...] = ()
    for symbol in labels:
        step: Set[str] = set()
        for state in survivors:
            step.update(transducer.rhs_frontier_states(state, symbol))
        if not step:
            sites = tuple(sorted((state, symbol) for state in survivors))
            break
        survivors = step
    else:
        # Every prefix survives, so the text rule itself is missing.
        sites = tuple(sorted((state, TEXT) for state in survivors))
    return ProtectionReport(
        label=label,
        path=path,
        sites=sites,
        witness=protected_violation_witness(transducer, nta, label),
    )


def is_text_preserving_with_protection(
    transducer: Transducer, nta: NTA, protected_labels: Iterable[str]
) -> bool:
    """The §7 combined property: text-preserving over ``L(nta)`` and no
    deletion below any protected label."""
    if isinstance(transducer, TopDownTransducer):
        from .topdown_analysis import is_text_preserving

        preserving = is_text_preserving(transducer, nta)
    else:
        from .dtl_analysis import is_text_preserving_dtl

        preserving = is_text_preserving_dtl(transducer, nta)
    if not preserving:
        return False
    return all(
        not deletes_protected_text(transducer, nta, label)
        for label in set(protected_labels)
    )
