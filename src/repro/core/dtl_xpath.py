"""DTL^XPath: DTL instantiated with Core XPath patterns (paper, §5.4).

The adapters evaluate via the Table-1 evaluator (cached per tree) and
translate to MSO for the decision procedures (Core XPath ⊆ MSO).
"""

from __future__ import annotations

from typing import Tuple

from ..trees.tree import Node
from ..xpath.ast import NodeExpr, PathExpr
from ..xpath.evaluator import XPathEvaluator
from ..xpath.parser import parse_node_expr, parse_path_expr
from ..xpath.to_mso import node_expr_to_mso, path_expr_to_mso
from .dtl import BinaryPattern, Call, DTLTransducer, EvaluationContext, UnaryPattern

__all__ = ["XPathUnary", "XPathBinary", "dtl_xpath", "xpath_call"]


def _evaluator(ctx: EvaluationContext) -> XPathEvaluator:
    return ctx.cache("xpath", lambda: XPathEvaluator(ctx.tree))  # type: ignore[return-value]


class XPathUnary(UnaryPattern):
    """A unary pattern given by a Core XPath node expression."""

    __slots__ = ("expr",)

    def __init__(self, expr: NodeExpr) -> None:
        self.expr = expr

    def holds(self, ctx: EvaluationContext, node: Node) -> bool:
        return _evaluator(ctx).holds(self.expr, node)

    def to_mso(self, x: str):
        return node_expr_to_mso(self.expr, x)

    def __repr__(self) -> str:
        return "XPathUnary(%s)" % self.expr

    def __str__(self) -> str:
        return str(self.expr)


class XPathBinary(BinaryPattern):
    """A binary pattern given by a Core XPath path expression."""

    __slots__ = ("expr",)

    def __init__(self, expr: PathExpr) -> None:
        self.expr = expr

    def select(self, ctx: EvaluationContext, node: Node) -> Tuple[Node, ...]:
        return _evaluator(ctx).select(self.expr, node)

    def to_mso(self, x: str, y: str):
        return path_expr_to_mso(self.expr, x, y)

    def __repr__(self) -> str:
        return "XPathBinary(%s)" % self.expr

    def __str__(self) -> str:
        return str(self.expr)


def xpath_call(state: str, path: str) -> Call:
    """A rhs call ``(state, alpha)`` with ``alpha`` parsed from Core
    XPath concrete syntax."""
    return Call(state, XPathBinary(parse_path_expr(path)))


def dtl_xpath(states, rules, text_states, initial, max_steps: int = 100000) -> DTLTransducer:
    """Build a DTL^XPath transducer from concrete syntax.

    ``rules`` is an iterable of ``(state, node_expr_source, rhs)``
    where rhs items may use :func:`xpath_call` or plain
    ``Call(state, path_source)`` with a string pattern.
    """
    prepared = []
    for state, pattern, rhs in rules:
        if isinstance(pattern, str):
            pattern = parse_node_expr(pattern)
        prepared.append((state, XPathUnary(pattern) if isinstance(pattern, NodeExpr) else pattern, _parse_string_calls(rhs)))
    return DTLTransducer(states, prepared, text_states, initial, max_steps)


def _parse_string_calls(rhs):
    """Allow ``Call(q, "down")`` with a string path in rule syntax."""
    if isinstance(rhs, list):
        return [_parse_string_calls(item) for item in rhs]
    if isinstance(rhs, Call) and isinstance(rhs.pattern, str):
        return Call(rhs.state, XPathBinary(parse_path_expr(rhs.pattern)))
    if isinstance(rhs, tuple) and len(rhs) == 2 and isinstance(rhs[0], str):
        return (rhs[0], _parse_string_calls(rhs[1]))
    return rhs
