"""Deciding text-preservation for DTL transducers (paper, §5.2-5.4).

The Section 5.3 construction, realized through the MSO → tree-automata
pipeline: the trees on which a DTL transducer copies (Lemma 5.4) or
rearranges (Lemma 5.5) form a regular language, obtained by compiling
one MSO sentence per property:

* the one-step relation between configurations,
  ``step_{q,q'}(x, y)``, is the disjunction over rules ``(q, phi) -> h``
  and calls ``(q', alpha)`` in ``h`` of ``phi(x) ∧ alpha(x, y)``
  (guarded to element nodes);
* configuration reachability ``(q, x) ~>* (q', y)`` is the standard
  second-order closure with one set variable per state — this replaces
  the paper's tree-jumping automata ``A^{q,q'}_T`` (their languages are
  exactly these formulas', cf. Lemma 5.8/Corollary 5.9);
* the copying and rearranging sentences quantify the paper's markers
  ``•, •1, •2, ◦ (◦1, ◦2)`` existentially and assemble the conditions
  of Lemmas 5.4/5.5 around the reachability formulas.

For DTL^XPath the patterns are translated into MSO first (Core XPath ⊆
MSO); see DESIGN.md on how this substitutes the paper's
EXPTIME-optimal 2ATWA route while preserving the observable blow-up.

Deciding over a schema intersects the sentence automaton with the
schema automaton; witnesses come out of the product's emptiness check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..automata.bta import BTA, intersect_bta
from ..automata.fcns import decode_tree, nta_to_bta
from ..automata.nta import NTA, TEXT
from ..mso.ast import And, Eq, ExistsFO, ExistsSO, Formula, In, Lab, Not, Or, formula_size
from ..mso.compile import compile_mso
from ..mso.relations import doc_before as _doc_before
from ..mso.relations import is_root as _root
from ..trees.substitution import make_value_unique
from ..trees.tree import Tree
from .dtl import Call, DTLTransducer, _rhs_calls

__all__ = [
    "step_formula",
    "reach_formula",
    "copying_sentence",
    "rearranging_sentence",
    "analysis_alphabet",
    "is_copying_dtl",
    "is_rearranging_dtl",
    "is_text_preserving_dtl",
    "counter_example_dtl",
    "counter_example_bta",
    "check_determinism",
]


def _or_all(formulas: Sequence[Formula]) -> Optional[Formula]:
    if not formulas:
        return None
    result = formulas[0]
    for f in formulas[1:]:
        result = Or(result, f)
    return result


def _and_all(formulas: Sequence[Formula]) -> Formula:
    result = formulas[0]
    for f in formulas[1:]:
        result = And(result, f)
    return result


def _formula_labels(formula: Formula) -> Set[str]:
    labels: Set[str] = set()
    stack = [formula]
    while stack:
        f = stack.pop()
        if isinstance(f, Lab):
            labels.add(f.label)
        for attr in ("inner", "left", "right"):
            child = getattr(f, attr, None)
            if isinstance(child, Formula):
                stack.append(child)
    return labels - {TEXT}


def _not_text(x: str) -> Formula:
    return Not(Lab(TEXT, x))


def _rules_of(transducer: DTLTransducer, state: str):
    return [(p, rhs) for (s, p, rhs) in transducer.rules if s == state]


def step_formula(transducer: DTLTransducer, q: str, q_next: str, x: str, y: str) -> Optional[Formula]:
    """The one-step relation ``(q, x) ~> (q_next, y)``, or ``None`` when
    no rule of ``q`` ever calls ``q_next``."""
    disjuncts: List[Formula] = []
    for pattern, rhs in _rules_of(transducer, q):
        for call in _rhs_calls(rhs):
            if call.state != q_next:
                continue
            disjuncts.append(
                And(_not_text(x), And(pattern.to_mso(x), call.pattern.to_mso(x, y)))
            )
    return _or_all(disjuncts)


def reach_formula(transducer: DTLTransducer, q: str, q_target: str, x: str, y: str) -> Formula:
    """``(q, x) ~>* (q_target, y)``: the second-order closure over the
    configuration graph, one set variable per transducer state."""
    states = sorted(transducer.states)
    set_var = {state: "RS_%s_SET" % state for state in states}
    a, b = "ra__", "rb__"
    violations: List[Formula] = []
    for p in states:
        for p_next in states:
            step = step_formula(transducer, p, p_next, a, b)
            if step is None:
                continue
            violations.append(
                And(In(a, set_var[p]), And(step, Not(In(b, set_var[p_next]))))
            )
    if violations:
        closed: Formula = Not(ExistsFO(a, ExistsFO(b, _or_all(violations))))
    else:
        closed = Eq(x, x)  # no steps at all: every family is closed
    body = And(In(x, set_var[q]), And(closed, Not(In(y, set_var[q_target]))))
    quantified: Formula = body
    for state in states:
        quantified = ExistsSO(set_var[state], quantified)
    return Not(quantified)


def _reach_text(transducer: DTLTransducer, q: str, x: str, z: str) -> Optional[Formula]:
    """The run from ``(q, x)`` reaches a configuration ``(q_t, z)`` with
    ``z`` a text node whose value is copied (``q_t`` a text state)."""
    disjuncts = [
        And(reach_formula(transducer, q, q_text, x, z), Lab(TEXT, z))
        for q_text in sorted(transducer.text_states)
    ]
    return _or_all(disjuncts)


def _base(transducer: DTLTransducer, q: str, w: str) -> Formula:
    """``(q, w)`` is a reachable configuration: reach from the root."""
    r = "rr__"
    return ExistsFO(r, And(_root(r), reach_formula(transducer, transducer.initial, q, r, w)))


def _call_pairs(rhs) -> List[Tuple[int, Call]]:
    return list(enumerate(_rhs_calls(rhs)))


def _joint_reach_text_same(
    transducer: DTLTransducer, q1: str, q2: str, w1: str, w2: str
) -> Optional[Formula]:
    """∃z: both runs (from ``q1`` at ``w1`` and ``q2`` at ``w2``) copy
    the *same* text node — ``z`` quantified innermost so the automaton
    products run over the smallest marked alphabet."""
    z = "mz__"
    reach_1 = _reach_text(transducer, q1, w1, z)
    reach_2 = _reach_text(transducer, q2, w2, z)
    if reach_1 is None or reach_2 is None:
        return None
    return ExistsFO(z, And(reach_1, reach_2))


def _joint_reach_text_ordered(
    transducer: DTLTransducer, q1: str, q2: str, w1: str, w2: str
) -> Optional[Formula]:
    """∃z1∃z2: the ``q1``-run (from ``w1``) copies the document-earlier
    text node, the ``q2``-run (from ``w2``) the later one."""
    z1, z2 = "mz1__", "mz2__"
    reach_1 = _reach_text(transducer, q1, w1, z1)
    reach_2 = _reach_text(transducer, q2, w2, z2)
    if reach_1 is None or reach_2 is None:
        return None
    inner = _and_all([reach_1, reach_2, _doc_before(z1, z2)])
    return ExistsFO(z1, ExistsFO(z2, inner))


def copying_sentence(transducer: DTLTransducer) -> Optional[Formula]:
    """The MSO sentence of Lemma 5.4: some tree makes the transducer
    copy.  ``None`` when no rule shape can ever copy (e.g. no text
    states)."""
    w, w1, w2 = "mw__", "mw1__", "mw2__"
    disjuncts: List[Formula] = []
    for q in sorted(transducer.states):
        for pattern, rhs in _rules_of(transducer, q):
            calls = _call_pairs(rhs)
            for i, call_1 in calls:
                for j, call_2 in calls:
                    joint = _joint_reach_text_same(
                        transducer, call_1.state, call_2.state, w1, w2
                    )
                    if joint is None:
                        continue
                    inner_parts = [
                        call_1.pattern.to_mso(w, w1),
                        call_2.pattern.to_mso(w, w2),
                        joint,
                    ]
                    cases: List[Formula] = []
                    if call_1.state != call_2.state:
                        # Lemma 5.4 / A^copy_1a: distinct next states.
                        cases.append(_and_all(inner_parts))
                    if i <= j:
                        # A^copy_1b: distinct next nodes (any occurrence
                        # pair, including the same call twice).
                        cases.append(_and_all(inner_parts + [Not(Eq(w1, w2))]))
                    if i < j and call_1.state == call_2.state:
                        # A^copy_2: doubling — two occurrences of the
                        # same state select the same node.
                        cases.append(_and_all(inner_parts + [Eq(w1, w2)]))
                    if not cases:
                        continue
                    inner = _or_all(cases)
                    disjuncts.append(
                        _and_all(
                            [
                                _base(transducer, q, w),
                                _not_text(w),
                                pattern.to_mso(w),
                                ExistsFO(w1, ExistsFO(w2, inner)),
                            ]
                        )
                    )
    union = _or_all(disjuncts)
    if union is None:
        return None
    return ExistsFO(w, union)


def rearranging_sentence(transducer: DTLTransducer) -> Optional[Formula]:
    """The MSO sentence of Lemma 5.5: some tree makes the transducer
    rearrange (markers quantified innermost-first to keep the compiled
    marked alphabets small)."""
    w, w1, w2 = "mw__", "mw1__", "mw2__"
    disjuncts: List[Formula] = []
    for q in sorted(transducer.states):
        for pattern, rhs in _rules_of(transducer, q):
            calls = _call_pairs(rhs)
            for i, call_earlier in calls:  # the call reaching the *later* text
                for j, call_later in calls:  # the call reaching the *earlier* text
                    if j < i:
                        continue
                    joint = _joint_reach_text_ordered(
                        transducer, call_later.state, call_earlier.state, w1, w2
                    )
                    if joint is None:
                        continue
                    inner_parts = [
                        call_later.pattern.to_mso(w, w1),
                        call_earlier.pattern.to_mso(w, w2),
                        joint,
                    ]
                    if i < j:
                        # Lemma 5.5(1): the call continuing to the later
                        # text node occurs strictly earlier in the rhs.
                        inner = _and_all(inner_parts)
                    else:
                        # Lemma 5.5(2): one call, two targets, the
                        # later-text target selected first.
                        inner = _and_all(inner_parts + [_doc_before(w2, w1)])
                    disjuncts.append(
                        _and_all(
                            [
                                _base(transducer, q, w),
                                _not_text(w),
                                pattern.to_mso(w),
                                ExistsFO(w1, ExistsFO(w2, inner)),
                            ]
                        )
                    )
    union = _or_all(disjuncts)
    if union is None:
        return None
    return ExistsFO(w, union)


def analysis_alphabet(transducer: DTLTransducer, nta: Optional[NTA] = None) -> Tuple[str, ...]:
    """The label alphabet the sentences are compiled over: schema labels
    plus every label mentioned by the transducer's patterns."""
    labels: Set[str] = set() if nta is None else set(nta.alphabet)
    for _state, pattern, rhs in transducer.rules:
        labels |= _formula_labels(pattern.to_mso("x"))
        for call in _rhs_calls(rhs):
            labels |= _formula_labels(call.pattern.to_mso("x", "y"))
    return tuple(sorted(labels))


def _sentence_bta(sentence: Optional[Formula], sigma: Tuple[str, ...]) -> Optional[BTA]:
    if sentence is None:
        return None
    pattern = compile_mso(sentence, sigma)
    return pattern.bta


def _restricted(sentence: Optional[Formula], transducer: DTLTransducer, nta: NTA) -> Optional[BTA]:
    sigma = analysis_alphabet(transducer, nta)
    bta = _sentence_bta(sentence, sigma)
    if bta is None:
        return None
    # Align alphabets: drop the (empty) mark component, then intersect
    # with the schema automaton.
    with obs.span("dtl.schema_product") as sp:
        plain = bta.image(lambda lab: lab[0])
        schema = nta_to_bta(nta)
        product = intersect_bta(plain, schema).trim()
        sp.set("states", len(product.states))
        return product


def _decide_sentence(
    phase: str, sentence: Optional[Formula], transducer: DTLTransducer, nta: NTA
) -> bool:
    """Shared shape of the two §5 deciders: build the sentence, compile
    and restrict it, then test emptiness — each step its own span."""
    with obs.span(phase) as sp:
        if sentence is not None and obs.enabled():
            sp.set("sentence_size", formula_size(sentence))
        product = _restricted(sentence, transducer, nta)
        if product is None:
            sp.set("verdict", False)
            obs.info("dtl", "sentence decided trivially",
                     phase=phase, verdict=False)
            return False
        with obs.span("dtl.emptiness") as sp_empty:
            sp_empty.set("states", len(product.states))
            empty = product.is_empty()
        sp.set("verdict", not empty)
        obs.info("dtl", "sentence decided", phase=phase,
                 verdict=not empty, product_states=len(product.states))
        return not empty


def is_copying_dtl(transducer: DTLTransducer, nta: NTA) -> bool:
    """Lemma 5.4 + §5.3: whether the transducer copies over ``L(nta)``."""
    with obs.span("dtl.sentence") as sp:
        sp.set("kind", "copying")
        sentence = copying_sentence(transducer)
    return _decide_sentence("dtl.copying", sentence, transducer, nta)


def is_rearranging_dtl(transducer: DTLTransducer, nta: NTA) -> bool:
    """Lemma 5.5 + §5.3: whether the transducer rearranges over ``L(nta)``."""
    with obs.span("dtl.sentence") as sp:
        sp.set("kind", "rearranging")
        sentence = rearranging_sentence(transducer)
    return _decide_sentence("dtl.rearranging", sentence, transducer, nta)


def is_text_preserving_dtl(transducer: DTLTransducer, nta: NTA) -> bool:
    """Theorems 5.12/5.18: whether the DTL transducer is text-preserving
    over ``L(nta)`` (Theorem 3.3 reduces this to not-copying and
    not-rearranging)."""
    return not is_copying_dtl(transducer, nta) and not is_rearranging_dtl(transducer, nta)


def counter_example_bta(transducer: DTLTransducer, nta: NTA) -> BTA:
    """The counter-example language (Section 7) as a BTA on encodings:
    schema trees on which the transducer copies or rearranges."""
    from ..automata.bta import union_bta

    parts: List[BTA] = []
    for sentence in (copying_sentence(transducer), rearranging_sentence(transducer)):
        product = _restricted(sentence, transducer, nta)
        if product is not None:
            parts.append(product)
    if not parts:
        # No text-copying rule at all: the empty language.
        return BTA({"q"}, {TEXT}, set(), {}, set())
    result = parts[0]
    for part in parts[1:]:
        result = union_bta(result, part)
    return result


def counter_example_dtl(transducer: DTLTransducer, nta: NTA) -> Optional[Tree]:
    """A smallest value-unique schema tree on which the transducer is
    not text-preserving, or ``None`` when it is text-preserving."""
    witness = counter_example_bta(transducer, nta).witness()
    if witness is None:
        return None
    return make_value_unique(decode_tree(witness))


def check_determinism(transducer: DTLTransducer, nta: Optional[NTA] = None) -> List[Tuple[str, int, int]]:
    """Statically check the paper's determinism requirement: no two
    rules of one state match the same node (of any tree, or of a schema
    tree when ``nta`` is given).

    Returns the offending ``(state, rule_index_1, rule_index_2)``
    triples (empty list = deterministic).
    """
    sigma = analysis_alphabet(transducer, nta)
    schema = nta_to_bta(nta) if nta is not None else None
    conflicts: List[Tuple[str, int, int]] = []
    by_state: Dict[str, List[Tuple[int, object]]] = {}
    for index, (state, pattern, _rhs) in enumerate(transducer.rules):
        by_state.setdefault(state, []).append((index, pattern))
    x = "dx__"
    for state, patterns in by_state.items():
        for a in range(len(patterns)):
            for b in range(a + 1, len(patterns)):
                index_a, pattern_a = patterns[a]
                index_b, pattern_b = patterns[b]
                overlap = ExistsFO(
                    x,
                    _and_all(
                        [
                            _not_text(x),
                            pattern_a.to_mso(x),  # type: ignore[attr-defined]
                            pattern_b.to_mso(x),  # type: ignore[attr-defined]
                        ]
                    ),
                )
                bta = _sentence_bta(overlap, sigma)
                assert bta is not None
                plain = bta.image(lambda lab: lab[0])
                if schema is not None:
                    plain = intersect_bta(plain, schema)
                if not plain.is_empty():
                    conflicts.append((state, index_a, index_b))
    return conflicts
