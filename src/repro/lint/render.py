"""Rendering diagnostics as human-readable text or machine-readable JSON."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from ..trees.parser import serialize_tree
from .diagnostics import SEVERITIES, Diagnostic

__all__ = ["render_text", "render_json", "summary_counts"]

_PLURAL = {"info": "notes", "warning": "warnings", "error": "errors"}
_SINGULAR = {"info": "note", "warning": "warning", "error": "error"}


def summary_counts(diagnostics: Sequence[Diagnostic]) -> Dict[str, int]:
    """Counts per severity, with all severities present."""
    counts = {severity: 0 for severity in SEVERITIES}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] += 1
    return counts


def _summary_line(diagnostics: Sequence[Diagnostic]) -> str:
    counts = summary_counts(diagnostics)
    parts = []
    for severity in reversed(SEVERITIES):  # errors first
        count = counts[severity]
        word = _SINGULAR[severity] if count == 1 else _PLURAL[severity]
        parts.append("%d %s" % (count, word))
    return ", ".join(parts)


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """The classic compiler-style listing: one ``file:line: severity
    CODE: message`` block per finding, a summary line at the end."""
    lines: List[str] = []
    for diagnostic in diagnostics:
        prefix = "%s: " % diagnostic.location if diagnostic.location is not None else ""
        lines.append(
            "%s%s %s: %s"
            % (prefix, diagnostic.severity, diagnostic.code, diagnostic.message)
        )
        if diagnostic.path is not None:
            lines.append("    text path: %s" % "/".join(diagnostic.path))
        if diagnostic.witness is not None:
            lines.append("    counter-example: %s" % serialize_tree(diagnostic.witness))
    lines.append(_summary_line(diagnostics))
    return "\n".join(lines) + "\n"


def render_json(
    diagnostics: Sequence[Diagnostic], stats: Optional[Dict[str, int]] = None
) -> str:
    """A stable JSON document: ``{"version", "summary", "diagnostics"}``,
    plus a ``"stats"`` object (engine memo hit/miss counts etc.) when
    given."""
    payload = {
        "version": 1,
        "summary": summary_counts(diagnostics),
        "diagnostics": [diagnostic.to_dict() for diagnostic in diagnostics],
    }
    if stats is not None:
        payload["stats"] = dict(stats)
    return json.dumps(payload, indent=2, sort_keys=False)
