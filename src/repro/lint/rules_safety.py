"""TP3xx/TP4xx — preservation and Section 7 safety diagnostics.

* **TP301** copying, localized to the offending rule and path run
  (Lemma 4.5), with the smallest counter-example document attached;
* **TP302** rearranging, localized per rule and frontier pair
  (Lemma 4.6), with per-rule smallest counter-examples;
* **TP401** deletion of text below a protected label (§7), with the
  deletion site (where the last path runs die) and a witness document;
* **TP402** maximal-safe-sub-schema report: when the transformation is
  unsafe, how much of the schema remains safe (§7).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Tuple

from ..core.safety import maximal_safe_subschema
from ..trees.parser import serialize_tree
from .diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover
    from .engine import LintContext, LintRule

__all__ = ["rules"]


def _format_path(path: Tuple[str, ...]) -> str:
    return "/".join(path)


def _check_copying(ctx: "LintContext") -> Iterator[Diagnostic]:
    report = ctx.copying()
    if report is None:
        return
    state, label = report.rule
    if report.kind == "divergence":
        cause = (
            "two distinct path runs pass through it on the text path %s, so one "
            "text value is output at least twice (Lemma 4.5(1))"
            % _format_path(report.path)
        )
    else:
        cause = (
            "its right-hand side mentions the successor state twice, doubling "
            "the text below the path %s (Lemma 4.5(2))" % _format_path(report.path)
        )
    yield Diagnostic(
        code="TP301",
        severity="error",
        message="the transducer copies text over the schema: rule (%s, %s) — %s"
        % (state, label, cause),
        rule=report.rule,
        location=ctx.sources.rule_location(report.rule),
        path=report.path,
        witness=report.witness,
        data={"kind": report.kind, "runs": [list(run) for run in report.runs]},
    )


def _check_rearranging(ctx: "LintContext") -> Iterator[Diagnostic]:
    for finding in ctx.rearranging():
        state, label = finding.rule
        early, late = finding.pair
        yield Diagnostic(
            code="TP302",
            severity="error",
            message=(
                "the transducer rearranges text over the schema: rule (%s, %s) "
                "puts state %s in an earlier output slot than %s, yet %s reaches "
                "text lying to the right of text reached by %s, so two values "
                "swap order (Lemma 4.6)" % (state, label, early, late, early, late)
            ),
            rule=finding.rule,
            location=ctx.sources.rule_location(finding.rule),
            witness=finding.witness,
            data={"earlier_output_state": early, "later_output_state": late},
        )


def _check_protected_deletions(ctx: "LintContext") -> Iterator[Diagnostic]:
    for label in ctx.protected_labels:
        report = ctx.protection(label)
        if report is None:
            continue
        sites = ", ".join("(%s, %s)" % site for site in report.sites)
        site_rule = report.sites[0] if report.sites else None
        location = None
        if site_rule is not None:
            # The site names a *missing* rule, so rule_location rarely has
            # a line; fall back to where the state was first mentioned.
            location = ctx.sources.rule_location(site_rule)
            if location is None or location.line is None:
                location = ctx.sources.state_location(site_rule[0]) or location
        yield Diagnostic(
            code="TP401",
            severity="error",
            message=(
                "text below protected <%s> is deleted on some valid document: "
                "along the text path %s every path run dies at %s"
                % (label, _format_path(report.path), sites)
            ),
            rule=site_rule,
            location=location,
            path=report.path,
            witness=report.witness,
            data={"protected_label": label, "sites": ["%s/%s" % site for site in report.sites]},
        )


def _check_subschema_shrinkage(ctx: "LintContext") -> Iterator[Diagnostic]:
    if not ctx.compute_subschema or not ctx.is_unsafe():
        return
    safe = maximal_safe_subschema(ctx.transducer, ctx.nta, ctx.protected_labels)
    if safe.is_empty():
        yield Diagnostic(
            code="TP402",
            severity="warning",
            message=(
                "the maximal safe sub-schema is EMPTY: the transformation is "
                "unsafe on every valid document (§7)"
            ),
            data={"safe_states": 0, "schema_states": len(ctx.nta.states)},
        )
        return
    witness = safe.witness()
    sample = "" if witness is None else "; smallest safe document: %s" % serialize_tree(witness)
    yield Diagnostic(
        code="TP402",
        severity="info",
        message=(
            "the transformation is unsafe on the full schema but safe on a "
            "non-empty sub-schema (NTA with %d states, size %d)%s (§7)"
            % (len(safe.states), safe.size, sample)
        ),
        data={"safe_states": len(safe.states), "safe_size": safe.size,
              "schema_states": len(ctx.nta.states),
              "smallest_safe_document": None if witness is None else serialize_tree(witness)},
    )


def rules() -> Tuple["LintRule", ...]:
    """The TP3xx/TP4xx rule registry entries."""
    from .engine import LintRule

    return (
        LintRule("TP301", "copying", "error", _check_copying),
        LintRule("TP302", "rearranging", "error", _check_rearranging),
        LintRule("TP401", "protected-deletion", "error", _check_protected_deletions),
        LintRule("TP402", "subschema-shrinkage", "info", _check_subschema_shrinkage),
    )
