"""TP5xx — dataflow diagnostics from :mod:`repro.lint.dataflow`.

* **TP501** states the rule graph can reach but no valid document ever
  does (the schema starves them) — reported per state, complementing
  the per-rule TP102;
* **TP502** copy amplification: a realizable rule calls the same
  text-productive state twice or more, so every text value below is
  emitted multiple times;
* **TP503** order-inversion sites: a realizable rule carries two or
  more text-productive frontier positions, so input text order is not
  forced onto the output;
* **TP504** vacuous rules: realizable, emit no labels, and every state
  they call is provably silent — a deletion written as a live rule;
* **TP505** root deletion: the schema allows a root label the initial
  state has no rule for, so those valid documents transduce to the
  empty hedge.

TP502/TP503 are informational: they flag the *sites* the Lemma 4.5/4.6
machinery will localize precisely (TP301/TP302 carry the verdicts and
witnesses).  All five checks read one memoized
:class:`~repro.lint.dataflow.DataflowSummary` — running the family
adds no fixpoint re-runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Tuple

from .diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover
    from .engine import LintContext, LintRule

__all__ = ["rules"]


def _check_flow_unreachable(ctx: "LintContext") -> Iterator[Diagnostic]:
    summary = ctx.dataflow()
    for state in sorted(summary.unreachable_under_schema):
        yield Diagnostic(
            code="TP501",
            severity="info",
            message=(
                "state %r is live in the rule graph but no valid document ever "
                "reaches it: the schema starves every chain of rules leading "
                "there (dataflow reachability pass)" % state
            ),
            location=ctx.sources.state_location(state),
            data={"state": state, "pass": "reachability"},
        )


def _check_copy_amplification(ctx: "LintContext") -> Iterator[Diagnostic]:
    summary = ctx.dataflow()
    for rule, (state, count) in sorted(summary.amplifying_rules.items()):
        yield Diagnostic(
            code="TP502",
            severity="info",
            message=(
                "rule (%s, %s) calls text-productive state %r %d times: every "
                "text value reached below is emitted %d times (dataflow "
                "copy-degree pass; TP301 localizes the Lemma 4.5 witness)"
                % (rule[0], rule[1], state, count, count)
            ),
            rule=rule,
            location=ctx.sources.rule_location(rule),
            data={"state": state, "count": count, "pass": "copy-degree"},
        )


def _check_order_inversion(ctx: "LintContext") -> Iterator[Diagnostic]:
    summary = ctx.dataflow()
    for rule, (first, second) in summary.inversion_sites:
        yield Diagnostic(
            code="TP503",
            severity="info",
            message=(
                "rule (%s, %s) has two text-carrying frontier positions "
                "(%r, %r): input text can reach the output through both, so "
                "the input's text order is not forced onto the output "
                "(dataflow text-flow pass; TP302 localizes the Lemma 4.6 "
                "witness)" % (rule[0], rule[1], first, second)
            ),
            rule=rule,
            location=ctx.sources.rule_location(rule),
            data={"states": [first, second], "pass": "text-flow"},
        )


def _check_vacuous_rules(ctx: "LintContext") -> Iterator[Diagnostic]:
    summary = ctx.dataflow()
    for rule in summary.vacuous_rules:
        yield Diagnostic(
            code="TP504",
            severity="warning",
            message=(
                "rule (%s, %s) fires on valid documents but can never "
                "contribute output: it emits no labels and every state it "
                "calls is silent (emits nothing, copies no text); write the "
                "deletion implicitly by dropping the rule (dataflow dead-rules "
                "pass)" % (rule[0], rule[1])
            ),
            rule=rule,
            location=ctx.sources.rule_location(rule),
            data={"pass": "dead-rules"},
        )


def _check_root_deletion(ctx: "LintContext") -> Iterator[Diagnostic]:
    summary = ctx.dataflow()
    initial = ctx.transducer.initial
    for label in sorted(summary.uncovered_root_labels):
        yield Diagnostic(
            code="TP505",
            severity="warning",
            message=(
                "the schema allows root label <%s> but the initial state %r "
                "has no rule for it: those valid documents transduce to the "
                "empty hedge, not a tree (dataflow reachability pass)"
                % (label, initial)
            ),
            location=ctx.sources.label_location(label),
            data={"label": label, "pass": "reachability"},
        )


def rules() -> Tuple["LintRule", ...]:
    """The TP5xx rule registry entries."""
    from .engine import LintRule

    return (
        LintRule("TP501", "flow-unreachable", "info", _check_flow_unreachable),
        LintRule("TP502", "flow-copy-amplification", "info", _check_copy_amplification),
        LintRule("TP503", "flow-order-inversion", "info", _check_order_inversion),
        LintRule("TP504", "flow-vacuous-rule", "warning", _check_vacuous_rules),
        LintRule("TP505", "flow-root-deletion", "warning", _check_root_deletion),
    )
