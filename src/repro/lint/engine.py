"""The lint registry and runner.

:class:`LintContext` carries the analyzed transducer/schema pair and
memoizes the shared machinery (the Lemma 4.8 configuration product,
the Lemma 4.5/4.6 reports, §7 protection reports) so rules never
recompute each other's work.  :func:`run_lint` executes a rule
selection and returns diagnostics sorted most-severe first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .. import obs
from ..automata.nta import NTA
from ..core.safety import ProtectionReport, protection_report
from ..core.topdown import TopDownTransducer
from ..core.topdown_analysis import (
    CopyingReport,
    RearrangingFinding,
    copying_report,
    rearranging_findings,
)
from ..schema.dtd import DTD, dtd_to_nta
from .dataflow import DataflowSummary, PrefilterArg
from .dataflow import analyze as dataflow_analyze
from .dataflow import dependency_closure, prefilter_enabled
from .diagnostics import Diagnostic, SourceInfo, severity_order

__all__ = ["LintRule", "LintContext", "default_rules", "run_lint"]

Schema = Union[DTD, NTA]


@dataclass(frozen=True)
class LintRule:
    """One registry entry: a stable code bound to a check function."""

    code: str
    name: str
    severity: str
    check: Callable[["LintContext"], Iterable[Diagnostic]]
    #: When ``True`` the rule is skipped on empty schema languages
    #: (every verdict would be vacuous noise; TP200 explains instead).
    needs_schema: bool = True


@dataclass
class LintContext:
    """Shared state handed to every rule check."""

    transducer: TopDownTransducer
    schema: Schema
    protected_labels: Tuple[str, ...] = ()
    sources: SourceInfo = field(default_factory=SourceInfo)
    compute_subschema: bool = True
    #: Dataflow pass selection (``None`` = the full pipeline); closed
    #: under dependencies by the pass manager.
    passes: Optional[Tuple[str, ...]] = None
    #: Whether the expensive decision procedures may consult the
    #: dataflow summary as a sound pre-filter (also subject to the
    #: global :func:`repro.lint.dataflow.prefilter_enabled` switch).
    use_prefilter: bool = True

    def __post_init__(self) -> None:
        if isinstance(self.schema, DTD):
            self.dtd: Optional[DTD] = self.schema
            self.nta: NTA = dtd_to_nta(self.schema)
        elif isinstance(self.schema, NTA):
            self.dtd = None
            self.nta = self.schema
        else:
            raise TypeError("schema must be a DTD or an NTA, got %r" % (self.schema,))
        self._memo: Dict[str, Any] = {}
        self.memo_hits: int = 0
        self.memo_misses: int = 0

    def _cached(self, key: str, compute: Callable[[], Any]) -> Any:
        if key not in self._memo:
            self.memo_misses += 1
            obs.add("lint.memo.misses")
            self._memo[key] = compute()
        else:
            self.memo_hits += 1
            obs.add("lint.memo.hits")
        return self._memo[key]

    def memo_stats(self) -> Dict[str, int]:
        """Hit/miss counts of the shared-machinery memo — how much work
        the rules reused instead of recomputing."""
        return {"hits": self.memo_hits, "misses": self.memo_misses}

    # -- shared machinery -------------------------------------------------

    def schema_is_empty(self) -> bool:
        return self._cached("schema_empty", self.nta.is_empty)

    def dataflow(self) -> DataflowSummary:
        """The memoized dataflow summary (see :mod:`repro.lint.dataflow`).

        Keyed globally by the identity of the ``(transducer, schema)``
        pair, so contexts differing only in protect sets, sources, or
        rule selection share one fixpoint run.
        """
        return self._cached(
            "dataflow",
            lambda: dataflow_analyze(
                self.transducer, self.nta, self.passes, cache_token=self.schema
            ),
        )

    def prefilter(self) -> PrefilterArg:
        """The ``prefilter=`` argument handed to the decision
        procedures: the dataflow summary when pre-filtering is on,
        ``False`` (explicitly disabled) otherwise."""
        if not self.use_prefilter or not prefilter_enabled():
            return False
        return self.dataflow()

    def _configs(self) -> Tuple[Set[Tuple[str, str]], Dict[Tuple[str, str], Any], Dict[str, Any]]:
        """The Lemma 4.8 configuration product, classified per
        ``(state, label)`` event: realizable (a rule fires), uncovered
        (no rule: implicit deletion), or a text drop (no ``text``
        rule).  Computed by the dataflow reachability pass."""
        return self._cached("configs", self._compute_configs)

    def _compute_configs(self) -> Tuple[Set[Tuple[str, str]], Dict[Tuple[str, str], Any], Dict[str, Any]]:
        summary = self.dataflow()
        return set(summary.realizable), dict(summary.uncovered), dict(summary.text_drops)

    def realizable_rules(self) -> Set[Tuple[str, str]]:
        """``(state, label)`` pairs (including ``text``) that fire on
        some valid document."""
        return self._configs()[0]

    def uncovered_pairs(self) -> Dict[Tuple[str, str], Any]:
        """Reachable ``(state, label)`` pairs with no rule — implicit
        deletions — mapped to an example schema state."""
        return self._configs()[1]

    def text_drop_states(self) -> Dict[str, Any]:
        """States that reach text under the schema but lack a ``text``
        rule, mapped to an example schema state."""
        return self._configs()[2]

    def empty_content_models(self) -> Set[str]:
        """DTD labels whose content model accepts no word at all."""
        def compute() -> Set[str]:
            if self.dtd is None:
                return set()
            return {
                label
                for label in self.dtd.alphabet
                if self.dtd.content_model(label).is_empty()
            }

        return self._cached("empty_models", compute)

    def copying(self) -> Optional[CopyingReport]:
        """The localized Lemma 4.5 copying report, or ``None``."""
        return self._cached(
            "copying",
            lambda: copying_report(self.transducer, self.nta, prefilter=self.prefilter()),
        )

    def rearranging(self) -> Tuple[RearrangingFinding, ...]:
        """The localized Lemma 4.6 rearranging findings (may be empty)."""
        return self._cached(
            "rearranging",
            lambda: rearranging_findings(
                self.transducer, self.nta, prefilter=self.prefilter()
            ),
        )

    def protection(self, label: str) -> Optional[ProtectionReport]:
        """The §7 protection report for one protected label."""
        return self._cached(
            "protection:%s" % label,
            lambda: protection_report(self.transducer, self.nta, label),
        )

    def is_unsafe(self) -> bool:
        """Whether any TP3xx/TP401 condition holds."""
        if self.copying() is not None or self.rearranging():
            return True
        return any(self.protection(label) is not None for label in self.protected_labels)


def default_rules() -> Tuple[LintRule, ...]:
    """All built-in rules, in code order (TP1xx ... TP5xx)."""
    from . import rules_flow, rules_safety, rules_schema, rules_topdown

    return (
        rules_topdown.rules()
        + rules_schema.rules()
        + rules_safety.rules()
        + rules_flow.rules()
    )


def _sort_key(diagnostic: Diagnostic) -> Tuple[int, str, int, str]:
    line = diagnostic.location.line if diagnostic.location and diagnostic.location.line else 0
    return (-severity_order(diagnostic.severity), diagnostic.code, line, diagnostic.message)


def run_lint(
    transducer: TopDownTransducer,
    schema: Schema,
    protected_labels: Iterable[str] = (),
    *,
    sources: Optional[SourceInfo] = None,
    codes: Optional[Iterable[str]] = None,
    compute_subschema: bool = True,
    rules: Optional[Sequence[LintRule]] = None,
    passes: Optional[Iterable[str]] = None,
    prefilter: bool = True,
) -> List[Diagnostic]:
    """Run the diagnostics engine on a transducer/schema pair.

    Parameters
    ----------
    transducer:
        A :class:`~repro.core.topdown.TopDownTransducer`.  (DTL
        transducers have no rule-level localization; use the boolean
        deciders in :mod:`repro.analysis` for those.)
    schema:
        A :class:`~repro.schema.dtd.DTD` or an
        :class:`~repro.automata.nta.NTA`.
    protected_labels:
        Labels whose text must never be deleted (§7) — enables TP401.
    sources:
        Optional ``file:line`` maps from the CLI loaders.
    codes:
        Restrict to a subset of diagnostic codes.
    compute_subschema:
        Whether TP402 may run the (exponential) §7 sub-schema
        construction on unsafe pairs.
    rules:
        Override the rule registry (defaults to :func:`default_rules`).
    passes:
        Restrict the dataflow pipeline to these passes (closed under
        dependencies; ``None`` runs all five).  Unknown names raise
        ``ValueError`` naming the valid set.
    prefilter:
        Whether the TP3xx decision procedures may consult the dataflow
        summary as a sound pre-filter.  Findings are identical either
        way; only the work differs.

    Returns diagnostics sorted most-severe first, then by code.
    """
    if not isinstance(transducer, TopDownTransducer):
        raise TypeError(
            "the lint engine localizes blame via Section 4 path runs and "
            "currently supports TopDownTransducer only; got %r" % (transducer,)
        )
    selected_passes: Optional[Tuple[str, ...]] = None
    if passes is not None:
        selected_passes = dependency_closure(passes)  # validates names
    context = LintContext(
        transducer=transducer,
        schema=schema,
        protected_labels=tuple(dict.fromkeys(protected_labels)),
        sources=sources if sources is not None else SourceInfo(),
        compute_subschema=compute_subschema,
        passes=selected_passes,
        use_prefilter=prefilter,
    )
    selected = tuple(rules) if rules is not None else default_rules()
    if codes is not None:
        wanted = set(codes)
        selected = tuple(rule for rule in selected if rule.code in wanted)
    with obs.span("lint.run") as sp:
        schema_empty = context.schema_is_empty()
        diagnostics: List[Diagnostic] = []
        for rule in selected:
            if schema_empty and rule.needs_schema:
                continue
            with obs.span("lint.rule") as rule_span:
                rule_span.set("code", rule.code)
                diagnostics.extend(rule.check(context))
            if obs.enabled():
                obs.observe("lint.rule.ms", rule_span.duration_ns / 1e6)
        diagnostics.sort(key=_sort_key)
        if obs.enabled():
            sp.set("rules", len(selected))
            sp.set("diagnostics", len(diagnostics))
            sp.set("memo_hits", context.memo_hits)
            sp.set("memo_misses", context.memo_misses)
        return diagnostics
