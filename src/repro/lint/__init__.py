"""Static-analysis diagnostics for transducer/schema pairs.

The package turns the paper's yes/no decision procedures into
lint-grade findings with stable codes:

* **TP1xx** — structural problems in the transducer (unreachable
  states, dead rules under the schema, no-op rules, implicit
  deletions);
* **TP2xx** — problems in the schema itself (empty language,
  non-productive or unreachable labels/states, empty content models);
* **TP3xx** — text-preservation violations, localized to the offending
  rule with the smallest counter-example attached (Lemmas 4.5/4.6);
* **TP4xx** — Section 7 safety findings (deletions below protected
  labels, maximal-safe-sub-schema shrinkage);
* **TP5xx** — dataflow findings from :mod:`repro.lint.dataflow`
  (schema-starved states, copy amplification, order-inversion sites,
  vacuous rules, root deletion).  The same summaries double as sound
  pre-filters gating the expensive TP3xx decision procedures.

Front doors: :func:`repro.analysis.diagnose` for the API and
``python -m repro lint`` for the command line.
"""

from . import dataflow
from .dataflow import DataflowSummary
from .diagnostics import (
    SEVERITIES,
    Diagnostic,
    SourceInfo,
    SourceLocation,
    severity_order,
)
from .engine import LintContext, LintRule, default_rules, run_lint
from .render import render_json, render_text, summary_counts

__all__ = [
    "dataflow",
    "DataflowSummary",
    "Diagnostic",
    "SourceInfo",
    "SourceLocation",
    "SEVERITIES",
    "severity_order",
    "LintContext",
    "LintRule",
    "default_rules",
    "run_lint",
    "render_text",
    "render_json",
    "summary_counts",
]
