"""The fixpoint pass manager over the transducer rule graph.

The *rule graph* has one node per ``(state, input label)`` event and
one edge per state reference on a rule's right-hand-side frontier.
Every analysis here is a monotone pass over that graph — values only
grow along a finite lattice — so all of them share one chaotic-
iteration :class:`Worklist` engine and terminate in polynomial time.

Passes are registered as :class:`PassSpec` entries with explicit
dependencies; :func:`run_passes` closes a selection under those
dependencies and executes the passes in registry order, folding their
results into one immutable :class:`DataflowSummary`.

The summaries double as *sound pre-filters* for the paper's decision
procedures (see :mod:`repro.core.topdown_analysis` and
:mod:`repro.core.typecheck`): a summary may prove an answer early
("definitely safe" / "definitely reachable") or shrink the state space
a product construction enumerates, but it never changes a verdict —
``--no-prefilter`` must yield byte-identical findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Generic,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    TypeVar,
    Union,
)

from ... import obs
from ...automata.nta import NTA, TEXT
from ...core.topdown import TopDownTransducer
from .config import prefilter_enabled

__all__ = [
    "Rule",
    "SchemaState",
    "Worklist",
    "RuleGraph",
    "PassStats",
    "PassSpec",
    "SummaryBuilder",
    "DataflowSummary",
    "register_pass",
    "pass_names",
    "dependency_closure",
    "run_passes",
    "analyze",
    "PrefilterArg",
    "resolve_prefilter",
    "log_skip",
    "clear_cache",
]

#: A transducer rule key: ``(state, input label)``; text rules use
#: the label ``"text"``.
Rule = Tuple[str, str]

#: A schema (NTA) state — opaque to the passes.
SchemaState = Hashable

T = TypeVar("T", bound=Hashable)


class Worklist(Generic[T]):
    """The one chaotic-iteration engine shared by every pass.

    A LIFO worklist with membership dedup: pushing an item already on
    the list is a no-op, so each lattice change enqueues its dependents
    at most once until the next pop.  ``pops`` counts iterations for
    the pass statistics.
    """

    __slots__ = ("_stack", "_member", "pops")

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._stack: List[T] = []
        self._member: Set[T] = set()
        self.pops: int = 0
        for item in items:
            self.push(item)

    def push(self, item: T) -> None:
        if item not in self._member:
            self._member.add(item)
            self._stack.append(item)

    def pop(self) -> T:
        item = self._stack.pop()
        self._member.discard(item)
        self.pops += 1
        return item

    def __bool__(self) -> bool:
        return bool(self._stack)

    def __len__(self) -> int:
        return len(self._stack)


class RuleGraph:
    """The static inputs every pass reads: the transducer, the schema
    NTA, and the per-schema-state label sets of completable documents
    (the Lemma 4.8 ingredient shared with the lint engine)."""

    __slots__ = ("transducer", "nta", "_labels_of")

    def __init__(self, transducer: TopDownTransducer, nta: NTA) -> None:
        self.transducer = transducer
        self.nta = nta
        self._labels_of: Optional[Dict[SchemaState, Set[str]]] = None

    def labels_of(self) -> Dict[SchemaState, Set[str]]:
        """``schema state -> labels`` (including ``text``) that can occur
        at a node in that state inside a completable valid document."""
        if self._labels_of is None:
            labels: Dict[SchemaState, Set[str]] = {}
            inhabited = self.nta.inhabited_states()
            for (schema_state, symbol), horizontal in self.nta.delta.items():
                if schema_state not in inhabited:
                    continue
                if symbol == TEXT:
                    if horizontal.accepts_empty_word():
                        labels.setdefault(schema_state, set()).add(TEXT)
                elif horizontal.accepts_empty_word() or horizontal.accepts_some_over(inhabited):
                    labels.setdefault(schema_state, set()).add(symbol)
            self._labels_of = labels
        return self._labels_of


@dataclass(frozen=True)
class PassStats:
    """Work counters of one pass run (exact, wall-time free)."""

    name: str
    iterations: int  # worklist pops
    visited: int  # distinct nodes touched
    facts: int  # derived facts recorded in the summary


@dataclass(frozen=True)
class PassSpec:
    """One registry entry: a stable pass name, its dependencies, and
    the transfer-function driver."""

    name: str
    requires: Tuple[str, ...]
    run: Callable[[RuleGraph, "SummaryBuilder"], PassStats]
    description: str = ""


@dataclass
class SummaryBuilder:
    """Mutable accumulator the passes write into; frozen into a
    :class:`DataflowSummary` by :func:`run_passes`."""

    graph: RuleGraph
    # reachability
    configs: Set[Tuple[str, SchemaState]] = field(default_factory=set)
    realizable: Set[Rule] = field(default_factory=set)
    uncovered: Dict[Rule, SchemaState] = field(default_factory=dict)
    text_drops: Dict[str, SchemaState] = field(default_factory=dict)
    frontiers: Dict[Rule, Tuple[str, ...]] = field(default_factory=dict)
    schema_reachable_states: Set[str] = field(default_factory=set)
    unreachable_under_schema: Set[str] = field(default_factory=set)
    uncovered_root_labels: Set[str] = field(default_factory=set)
    schema_generated_labels: FrozenSet[str] = frozenset()
    # copy-degree
    text_productive: Set[str] = field(default_factory=set)
    copy_degree: Dict[Rule, int] = field(default_factory=dict)
    amplifying_rules: Dict[Rule, Tuple[str, int]] = field(default_factory=dict)
    max_copy_degree: int = 0
    copy_free: bool = False
    # label-flow
    emits: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    rule_output_labels: Dict[Rule, FrozenSet[str]] = field(default_factory=dict)
    output_labels: FrozenSet[str] = frozenset()
    # text-flow
    inversion_sites: Tuple[Tuple[Rule, Tuple[str, str]], ...] = ()
    order_safe: bool = False
    # dead/shadowed rules
    dead_rules: Tuple[Rule, ...] = ()
    silent_states: Set[str] = field(default_factory=set)
    vacuous_rules: Tuple[Rule, ...] = ()
    # bookkeeping
    _mentions: Optional[Dict[str, Tuple[Rule, ...]]] = None

    def mentions(self) -> Dict[str, Tuple[Rule, ...]]:
        """Reverse rule-graph index: ``state -> realizable rules whose
        frontier mentions it`` (the dependents map of the backward
        passes).  Requires the reachability pass."""
        if self._mentions is None:
            index: Dict[str, List[Rule]] = {}
            # Deterministic order throughout: the backward passes count
            # worklist pops as their `iterations` stat, and those counts
            # must be reproducible across hash seeds for the exact
            # counter comparisons of the bench-regression gate.
            for rule, frontier in self.frontiers.items():
                for state in sorted(set(frontier)):
                    index.setdefault(state, []).append(rule)
            self._mentions = {state: tuple(rules) for state, rules in index.items()}
        return self._mentions


@dataclass(frozen=True)
class DataflowSummary:
    """The immutable result of a pass-manager run.

    Every field is an *exact* fact about runs on valid documents where
    the docstring says so, and a sound over-approximation otherwise;
    the two boolean pay-off flags (:attr:`copy_free`, :attr:`order_safe`)
    only ever claim safety — they are never set on an unsafe pair.
    """

    passes: Tuple[str, ...]
    stats: Mapping[str, PassStats]
    # -- reachability (exact: the Lemma 4.8 configuration product) ------
    configs: FrozenSet[Tuple[str, SchemaState]]
    realizable: FrozenSet[Rule]
    uncovered: Mapping[Rule, SchemaState]
    text_drops: Mapping[str, SchemaState]
    frontiers: Mapping[Rule, Tuple[str, ...]]
    schema_reachable_states: FrozenSet[str]
    unreachable_under_schema: FrozenSet[str]
    uncovered_root_labels: FrozenSet[str]
    schema_generated_labels: FrozenSet[str]
    # -- copy-degree (over-approximation; saturated at 2 == omega) ------
    text_productive: FrozenSet[str]
    copy_degree: Mapping[Rule, int]
    amplifying_rules: Mapping[Rule, Tuple[str, int]]
    max_copy_degree: int
    copy_free: bool
    # -- label-flow (over-approximation of emittable output labels) -----
    emits: Mapping[str, FrozenSet[str]]
    rule_output_labels: Mapping[Rule, FrozenSet[str]]
    output_labels: FrozenSet[str]
    # -- text-flow ------------------------------------------------------
    inversion_sites: Tuple[Tuple[Rule, Tuple[str, str]], ...]
    order_safe: bool
    # -- dead/shadowed rules (exact) ------------------------------------
    dead_rules: Tuple[Rule, ...]
    silent_states: FrozenSet[str]
    vacuous_rules: Tuple[Rule, ...]

    def has_pass(self, name: str) -> bool:
        return name in self.passes

    def stats_dict(self) -> Dict[str, Dict[str, int]]:
        """Per-pass work counters as plain JSON-ready dicts."""
        return {
            name: {
                "iterations": stat.iterations,
                "visited": stat.visited,
                "facts": stat.facts,
            }
            for name, stat in sorted(self.stats.items())
        }


# ---------------------------------------------------------------------------
# Registry and driver
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, PassSpec] = {}
_ORDER: List[str] = []


def register_pass(spec: PassSpec) -> PassSpec:
    """Register a pass (module import time); registry order is pipeline
    order, so a pass must be registered after its dependencies."""
    for requirement in spec.requires:
        if requirement not in _REGISTRY:
            raise ValueError(
                "pass %r requires unregistered pass %r" % (spec.name, requirement)
            )
    if spec.name in _REGISTRY:
        raise ValueError("duplicate pass name %r" % (spec.name,))
    _REGISTRY[spec.name] = spec
    _ORDER.append(spec.name)
    return spec


def pass_names() -> Tuple[str, ...]:
    """All registered pass names, in pipeline order."""
    _ensure_passes_loaded()
    return tuple(_ORDER)


def dependency_closure(selected: Iterable[str]) -> Tuple[str, ...]:
    """The selection closed under ``requires``, in pipeline order.
    Unknown names raise ``ValueError`` naming the valid set."""
    _ensure_passes_loaded()
    wanted: Set[str] = set()
    worklist: Worklist[str] = Worklist()
    for name in selected:
        if name not in _REGISTRY:
            raise ValueError(
                "unknown dataflow pass %r; valid passes: %s"
                % (name, ", ".join(_ORDER))
            )
        worklist.push(name)
    while worklist:
        name = worklist.pop()
        if name in wanted:
            continue
        wanted.add(name)
        for requirement in _REGISTRY[name].requires:
            worklist.push(requirement)
    return tuple(name for name in _ORDER if name in wanted)


def _ensure_passes_loaded() -> None:
    if not _REGISTRY:
        from . import passes as _passes  # noqa: F401  (registration side effect)


def run_passes(
    transducer: TopDownTransducer,
    nta: NTA,
    passes: Optional[Iterable[str]] = None,
) -> DataflowSummary:
    """Run the selected passes (default: all) plus their dependencies
    over the rule graph and return the folded summary."""
    _ensure_passes_loaded()
    if passes is None:
        selected = tuple(_ORDER)
    else:
        selected = dependency_closure(passes)
    if "reachability" not in selected:
        # Every consumer needs the configuration product; the closure
        # of any non-empty selection contains it, but an empty
        # selection must still produce a usable summary.
        selected = dependency_closure(list(selected) + ["reachability"])
    graph = RuleGraph(transducer, nta)
    builder = SummaryBuilder(graph=graph)
    stats: Dict[str, PassStats] = {}
    with obs.span("dataflow.analyze") as span:
        for name in selected:
            spec = _REGISTRY[name]
            with obs.span("dataflow.pass") as pass_span:
                pass_span.set("pass", name)
                stat = spec.run(graph, builder)
            stats[name] = stat
            if obs.enabled():
                obs.add("dataflow.pass.%s.iterations" % name, stat.iterations)
                obs.add("dataflow.pass.%s.visited" % name, stat.visited)
                obs.add("dataflow.pass.%s.facts" % name, stat.facts)
                # Cross-pass aggregates with per-pass attribution: the
                # flat totals sum over passes, the labels say which
                # pass the work belongs to.
                obs.add("dataflow.pass.iterations", stat.iterations,
                        **{"pass": name, "site": "run_passes"})
                obs.add("dataflow.pass.visited", stat.visited,
                        **{"pass": name, "site": "run_passes"})
                obs.add("dataflow.pass.facts", stat.facts,
                        **{"pass": name, "site": "run_passes"})
        if obs.enabled():
            obs.add("dataflow.passes_run", len(selected))
            span.set("passes", len(selected))
            span.set("configs", len(builder.configs))
    return DataflowSummary(
        passes=selected,
        stats=stats,
        configs=frozenset(builder.configs),
        realizable=frozenset(builder.realizable),
        uncovered=dict(builder.uncovered),
        text_drops=dict(builder.text_drops),
        frontiers=dict(builder.frontiers),
        schema_reachable_states=frozenset(builder.schema_reachable_states),
        unreachable_under_schema=frozenset(builder.unreachable_under_schema),
        uncovered_root_labels=frozenset(builder.uncovered_root_labels),
        schema_generated_labels=builder.schema_generated_labels,
        text_productive=frozenset(builder.text_productive),
        copy_degree=dict(builder.copy_degree),
        amplifying_rules=dict(builder.amplifying_rules),
        max_copy_degree=builder.max_copy_degree,
        copy_free=builder.copy_free,
        emits=dict(builder.emits),
        rule_output_labels=dict(builder.rule_output_labels),
        output_labels=builder.output_labels,
        inversion_sites=builder.inversion_sites,
        order_safe=builder.order_safe,
        dead_rules=builder.dead_rules,
        silent_states=frozenset(builder.silent_states),
        vacuous_rules=builder.vacuous_rules,
    )


# ---------------------------------------------------------------------------
# Memoized front door + pre-filter resolution
# ---------------------------------------------------------------------------

#: Full-pipeline summaries keyed by input object identity.  The inputs
#: are immutable once constructed ("editing a rule" builds a new
#: transducer), so identity is a sound cache key; the cached inputs are
#: kept alive and re-verified with ``is`` to guard against id() reuse.
_CACHE: Dict[Tuple[int, int], Tuple[TopDownTransducer, object, DataflowSummary]] = {}
_CACHE_LIMIT = 64


def analyze(
    transducer: TopDownTransducer,
    nta: NTA,
    passes: Optional[Iterable[str]] = None,
    *,
    cache_token: Optional[object] = None,
) -> DataflowSummary:
    """The memoized front door: run (or reuse) the full pipeline.

    Full-pipeline summaries (``passes=None``) are cached by the
    identity of ``(transducer, cache_token or nta)`` — a new transducer
    or schema object invalidates, anything else (protect sets, source
    maps, repeated lint runs) reuses.  Selected-pass runs are never
    cached (the lint engine memoizes those per run).
    """
    if passes is not None:
        return run_passes(transducer, nta, passes)
    token: object = cache_token if cache_token is not None else nta
    key = (id(transducer), id(token))
    hit = _CACHE.get(key)
    if hit is not None and hit[0] is transducer and hit[1] is token:
        obs.add("dataflow.cache.hits")
        return hit[2]
    obs.add("dataflow.cache.misses")
    summary = run_passes(transducer, nta, None)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = (transducer, token, summary)
    return summary


def clear_cache() -> None:
    """Drop all memoized summaries (tests)."""
    _CACHE.clear()


#: ``prefilter=`` argument convention of the decision procedures:
#: ``None`` — consult the global switch; ``False`` — force off;
#: ``True`` — force on; a summary — use it as-is.
PrefilterArg = Union[None, bool, DataflowSummary]


def resolve_prefilter(
    transducer: TopDownTransducer, nta: NTA, prefilter: PrefilterArg
) -> Optional[DataflowSummary]:
    """Resolve a decision procedure's ``prefilter`` argument to a
    summary (or ``None`` when pre-filtering is off)."""
    if isinstance(prefilter, DataflowSummary):
        return prefilter
    if prefilter is False:
        return None
    if prefilter is None and not prefilter_enabled():
        return None
    return analyze(transducer, nta)


def log_skip(procedure: str, pass_name: str, **details: object) -> None:
    """Record that a dataflow summary short-circuited ``procedure``:
    one counter tick plus the one-line obs log event naming the
    responsible pass."""
    obs.add("dataflow.prefilter.skips")
    obs.info(
        "dataflow.prefilter",
        "skipped by static pre-filter",
        procedure=procedure,
        responsible_pass=pass_name,
        **details,
    )
