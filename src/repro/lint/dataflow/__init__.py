"""Dataflow static analysis over the transducer rule graph.

A fixpoint pass manager (:mod:`.framework`) runs five monotone lattice
passes (:mod:`.passes`) over the rule graph of a
:class:`~repro.core.topdown.TopDownTransducer` under an input-schema
NTA:

1. ``reachability`` — which ``(state, schema state)`` configurations
   occur on valid documents (the Lemma 4.8 product);
2. ``copy-degree`` — how often each rule can duplicate a text-carrying
   subtree (0 / 1 / omega);
3. ``label-flow`` — which output labels each state can emit, and the
   exact set of emittable labels;
4. ``text-flow`` — rule sites where two text-carrying branches meet
   (order inversion / duplication sites);
5. ``dead-rules`` — never-firing rules, silent states, vacuous rules.

The resulting :class:`DataflowSummary` powers the TP5xx lint family
(:mod:`repro.lint.rules_flow`) and serves as a *sound pre-filter* for
the expensive decision procedures: ``copy_free``/``order_safe`` prove
text preservation without the Theorem 4.11 product automata, and the
exact ``output_labels``/``schema_generated_labels`` sets shrink (or
decide) the Theorem 5.18 inverse-type construction.  Pre-filters never
change verdicts — see :func:`prefilter_disabled` and the soundness
note in DESIGN.md.
"""

from .config import (
    NO_PREFILTER_ENV,
    prefilter_disabled,
    prefilter_enabled,
    set_prefilter,
)
from .framework import (
    DataflowSummary,
    PassSpec,
    PassStats,
    PrefilterArg,
    Rule,
    RuleGraph,
    SummaryBuilder,
    Worklist,
    analyze,
    clear_cache,
    dependency_closure,
    log_skip,
    pass_names,
    resolve_prefilter,
    run_passes,
)
from .passes import OMEGA

__all__ = [
    "DataflowSummary",
    "PassSpec",
    "PassStats",
    "PrefilterArg",
    "Rule",
    "RuleGraph",
    "SummaryBuilder",
    "Worklist",
    "OMEGA",
    "analyze",
    "clear_cache",
    "dependency_closure",
    "log_skip",
    "pass_names",
    "resolve_prefilter",
    "run_passes",
    "prefilter_enabled",
    "prefilter_disabled",
    "set_prefilter",
    "NO_PREFILTER_ENV",
]
