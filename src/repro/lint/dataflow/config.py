"""Process-wide pre-filter switch.

The dataflow summaries are *sound pre-filters*: they may prove a
decision procedure's answer (or shrink its state space) but never
change it.  This module controls whether the decision procedures in
:mod:`repro.core` consult them by default.

Two knobs, checked in order:

* the ``REPRO_NO_PREFILTER`` environment variable (any non-empty
  value disables pre-filtering) — set by ``--no-prefilter`` on the
  CLI so worker processes inherit the choice;
* :func:`set_prefilter` — the in-process override used by tests.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = ["prefilter_enabled", "set_prefilter", "prefilter_disabled", "NO_PREFILTER_ENV"]

#: Environment variable disabling pre-filtering when non-empty.
NO_PREFILTER_ENV = "REPRO_NO_PREFILTER"

_enabled: bool = True


def prefilter_enabled() -> bool:
    """Whether decision procedures may consult dataflow summaries."""
    if os.environ.get(NO_PREFILTER_ENV):
        return False
    return _enabled


def set_prefilter(enabled: bool) -> None:
    """Set the in-process pre-filter default (tests and the CLI)."""
    global _enabled
    _enabled = bool(enabled)


@contextmanager
def prefilter_disabled() -> Iterator[None]:
    """Temporarily disable pre-filtering (soundness cross-checks)."""
    global _enabled
    previous = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = previous
