"""The five monotone passes over the transducer rule graph.

Each pass is a :class:`~.framework.PassSpec` whose driver runs a
chaotic iteration on the shared :class:`~.framework.Worklist` engine
(or a single linear scan when the lattice is trivial) and writes its
facts into the :class:`~.framework.SummaryBuilder`.  Registration
order is pipeline order:

``reachability`` → ``copy-degree`` → ``label-flow`` → ``text-flow``
→ ``dead-rules``

Soundness directions (see DESIGN.md):

* *reachability* is **exact** on valid documents — it is the Lemma 4.8
  configuration product, the same computation the lint engine's
  TP102/TP104/TP105 rules are built on;
* *copy-degree*'s ``text_productive`` set and *label-flow*'s ``emits``
  map **over-approximate** capability (a state in the set may still
  never produce text/labels below a *particular* rule), so their
  *empty/low* verdicts — ``copy_free``, ``order_safe``, silence — are
  the trustworthy direction: they mean *definitely* safe;
* ``output_labels`` is **exact**: every label in it is emitted on some
  valid document (any realizable rule fires on one, and its rhs
  ``OutputNode`` labels are emitted unconditionally when it does), and
  every emittable label occurs on some realizable rule's rhs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ...automata.nta import TEXT
from ...core.topdown import RuleHedge, _rhs_labels, _rhs_states
from ...core.topdown_analysis import _useful_child_states
from .framework import (
    PassSpec,
    PassStats,
    Rule,
    RuleGraph,
    SchemaState,
    SummaryBuilder,
    Worklist,
    register_pass,
)

__all__ = [
    "REACHABILITY",
    "COPY_DEGREE",
    "LABEL_FLOW",
    "TEXT_FLOW",
    "DEAD_RULES",
]

#: Copy degrees saturate here: 2 means "omega" (two or more).
OMEGA = 2


# ---------------------------------------------------------------------------
# Pass 1: reachability/productivity under the input schema
# ---------------------------------------------------------------------------


def _run_reachability(graph: RuleGraph, builder: SummaryBuilder) -> PassStats:
    """The Lemma 4.8 configuration product: explore all pairs
    ``(transducer state, schema state)`` reachable on valid documents
    and classify every ``(state, label)`` event as realizable (a rule
    fires), uncovered (no rule: implicit deletion), or a text drop (no
    ``text`` rule)."""
    transducer, nta = graph.transducer, graph.nta
    labels_of = graph.labels_of()
    start: Tuple[str, SchemaState] = (transducer.initial, nta.initial)
    builder.configs.add(start)
    worklist: Worklist[Tuple[str, SchemaState]] = Worklist([start])
    while worklist:
        state, schema_state = worklist.pop()
        for label in labels_of.get(schema_state, ()):
            if label == TEXT:
                if state in transducer.text_states:
                    builder.realizable.add((state, TEXT))
                else:
                    builder.text_drops.setdefault(state, schema_state)
                continue
            if (state, label) not in transducer.rules:
                builder.uncovered.setdefault((state, label), schema_state)
                continue
            builder.realizable.add((state, label))
            children = _useful_child_states(nta, schema_state, label)
            for target in set(transducer.rhs_frontier_states(state, label)):
                for child in children:
                    config = (target, child)
                    if config not in builder.configs:
                        builder.configs.add(config)
                        worklist.push(config)
    # Sorted so the frontier map (and everything the later passes build
    # from it) has hash-seed-independent order — the pass iteration
    # stats are part of the exact-counter bench comparisons.
    for state, label in sorted(builder.realizable):
        if label != TEXT:
            builder.frontiers[(state, label)] = transducer.rhs_frontier_states(
                state, label
            )
    builder.schema_reachable_states = {state for state, _ in builder.configs}
    builder.unreachable_under_schema = (
        set(transducer.reachable_states()) - builder.schema_reachable_states
    )
    builder.uncovered_root_labels = {
        label
        for label in labels_of.get(nta.initial, ())
        if label != TEXT and (transducer.initial, label) not in transducer.rules
    }
    builder.schema_generated_labels = nta.generated_labels()
    facts = (
        len(builder.realizable)
        + len(builder.uncovered)
        + len(builder.text_drops)
        + len(builder.unreachable_under_schema)
    )
    return PassStats(
        name="reachability",
        iterations=worklist.pops,
        visited=len(builder.configs),
        facts=facts,
    )


REACHABILITY = register_pass(
    PassSpec(
        name="reachability",
        requires=(),
        run=_run_reachability,
        description="configs (state x schema state) reachable on valid documents",
    )
)


# ---------------------------------------------------------------------------
# Pass 2: copy-degree (0 / 1 / omega)
# ---------------------------------------------------------------------------


def _run_copy_degree(graph: RuleGraph, builder: SummaryBuilder) -> PassStats:
    """Backward least fixpoint for ``text_productive`` (states that can
    route an input text value to the output), then the per-rule count
    of text-productive frontier positions, saturated at :data:`OMEGA`.

    ``copy_free`` (degree <= 1 on every realizable rule) implies the
    transducer is neither copying (Lemma 4.5) nor rearranging
    (Lemma 4.6): with at most one text-carrying branch per rule, two
    sibling path runs can never both reach text."""
    transducer = graph.transducer
    productive = builder.text_productive
    mentions = builder.mentions()
    worklist: Worklist[str] = Worklist()
    for state, label in sorted(builder.realizable):
        if label == TEXT and state not in productive:
            productive.add(state)
            worklist.push(state)
    visited: Set[str] = set(productive)
    while worklist:
        state = worklist.pop()
        for rule in mentions.get(state, ()):
            source = rule[0]
            visited.add(source)
            if source not in productive:
                productive.add(source)
                worklist.push(source)
    max_degree = 0
    for rule, frontier in builder.frontiers.items():
        degree = sum(1 for state in frontier if state in productive)
        degree = min(degree, OMEGA)
        builder.copy_degree[rule] = degree
        max_degree = max(max_degree, degree)
        if degree >= OMEGA:
            counts: Dict[str, int] = {}
            for state in frontier:
                if state in productive:
                    counts[state] = counts.get(state, 0) + 1
            doubled = sorted(
                (state for state, count in counts.items() if count >= 2),
                key=lambda state: (-counts[state], state),
            )
            if doubled:
                builder.amplifying_rules[rule] = (doubled[0], counts[doubled[0]])
    # Text rules have copy degree exactly 1 (they emit the value once),
    # so they never raise the maximum.
    builder.max_copy_degree = max_degree
    builder.copy_free = max_degree <= 1
    return PassStats(
        name="copy-degree",
        iterations=worklist.pops,
        visited=len(visited),
        facts=len(productive) + len(builder.copy_degree),
    )


COPY_DEGREE = register_pass(
    PassSpec(
        name="copy-degree",
        requires=("reachability",),
        run=_run_copy_degree,
        description="text-productive states and per-rule copy degree (0/1/omega)",
    )
)


# ---------------------------------------------------------------------------
# Pass 3: output label-flow
# ---------------------------------------------------------------------------


def _run_label_flow(graph: RuleGraph, builder: SummaryBuilder) -> PassStats:
    """Forward union fixpoint: which output labels can each state's
    translation ever contain, considering only realizable rules."""
    transducer = graph.transducer
    mentions = builder.mentions()
    emits: Dict[str, Set[str]] = {}
    worklist: Worklist[str] = Worklist()
    for rule in builder.frontiers:
        rhs: RuleHedge = transducer.rules[rule]
        labels = frozenset(_rhs_labels(rhs))
        builder.rule_output_labels[rule] = labels
        if labels:
            bucket = emits.setdefault(rule[0], set())
            if labels - bucket:
                bucket.update(labels)
                worklist.push(rule[0])
    visited: Set[str] = set(emits)
    while worklist:
        state = worklist.pop()
        source_labels = emits[state]
        for rule in mentions.get(state, ()):
            source = rule[0]
            visited.add(source)
            bucket = emits.setdefault(source, set())
            if source_labels - bucket:
                bucket.update(source_labels)
                worklist.push(source)
    builder.emits = {
        state: frozenset(labels) for state, labels in emits.items() if labels
    }
    builder.output_labels = frozenset(
        label for labels in builder.rule_output_labels.values() for label in labels
    )
    return PassStats(
        name="label-flow",
        iterations=worklist.pops,
        visited=len(visited),
        facts=sum(len(labels) for labels in builder.emits.values()),
    )


LABEL_FLOW = register_pass(
    PassSpec(
        name="label-flow",
        requires=("reachability",),
        run=_run_label_flow,
        description="output labels each state can emit; exact emittable-label set",
    )
)


# ---------------------------------------------------------------------------
# Pass 4: text-flow provenance
# ---------------------------------------------------------------------------


def _run_text_flow(graph: RuleGraph, builder: SummaryBuilder) -> PassStats:
    """Inversion sites: realizable rules carrying two or more
    text-productive frontier positions.  Each such site lets two input
    text values reach the output under both relative orders (or twice),
    so ``order_safe`` (no sites) proves text order is preserved."""
    sites: List[Tuple[Rule, Tuple[str, str]]] = []
    for rule in sorted(builder.frontiers):
        frontier = builder.frontiers[rule]
        carrying = [state for state in frontier if state in builder.text_productive]
        if len(carrying) >= 2:
            sites.append((rule, (carrying[0], carrying[1])))
    builder.inversion_sites = tuple(sites)
    builder.order_safe = not sites
    return PassStats(
        name="text-flow",
        iterations=len(builder.frontiers),
        visited=len(builder.frontiers),
        facts=len(sites),
    )


TEXT_FLOW = register_pass(
    PassSpec(
        name="text-flow",
        requires=("copy-degree",),
        run=_run_text_flow,
        description="rule sites where two text-carrying branches meet",
    )
)


# ---------------------------------------------------------------------------
# Pass 5: dead/shadowed-rule detection
# ---------------------------------------------------------------------------


def _run_dead_rules(graph: RuleGraph, builder: SummaryBuilder) -> PassStats:
    """Rules that never fire on valid documents (``dead_rules``),
    states whose translation is provably always the empty hedge
    (``silent_states``), and realizable rules that only call silent
    states without emitting anything themselves (``vacuous_rules`` —
    deletions written as live rules)."""
    transducer = graph.transducer
    reachable = transducer.reachable_states()
    all_rules: List[Rule] = sorted(
        list(transducer.rules) + [(state, TEXT) for state in transducer.text_states]
    )
    builder.dead_rules = tuple(
        rule
        for rule in all_rules
        if rule[0] in reachable and rule not in builder.realizable
    )
    builder.silent_states = {
        state
        for state in transducer.states
        if state not in builder.text_productive and not builder.emits.get(state)
    }
    vacuous: List[Rule] = []
    for rule in sorted(builder.frontiers):
        rhs = transducer.rules[rule]
        if not rhs or builder.rule_output_labels.get(rule):
            continue
        called = set(_rhs_states(rhs))
        if called and called <= builder.silent_states:
            vacuous.append(rule)
    builder.vacuous_rules = tuple(vacuous)
    return PassStats(
        name="dead-rules",
        iterations=len(all_rules),
        visited=len(all_rules) + len(transducer.states),
        facts=len(builder.dead_rules)
        + len(builder.silent_states)
        + len(builder.vacuous_rules),
    )


DEAD_RULES = register_pass(
    PassSpec(
        name="dead-rules",
        requires=("reachability", "copy-degree", "label-flow"),
        run=_run_dead_rules,
        description="never-firing rules, silent states, vacuous rules",
    )
)
