"""TP1xx — structural diagnostics for the transducer under the schema.

* **TP101** unreachable states (no chain of rules from the initial
  state mentions them);
* **TP102** dead rules: the ``(state, label)`` pair is unrealizable
  under the schema — the Lemma 4.8 product of the schema's path
  automaton with the transducer's never reaches that configuration;
* **TP103** no-op rules with an empty right-hand side (equivalent to
  having no rule at all, i.e. an implicit deletion written as a rule);
* **TP104** uncovered ``(state, label)`` pairs that *are* reachable
  under the schema: the subtree is silently deleted.  This is the
  idiomatic selection mechanism of uniform transducers, so it is an
  informational note, not a warning;
* **TP105** states that reach text nodes under the schema but lack a
  value-copying ``text`` rule: the values are silently dropped.

Duplicate rules cannot be represented in a
:class:`~repro.core.topdown.TopDownTransducer` (rules are keyed by
``(state, label)``); the CLI loader rejects duplicated and shadowing
lines at parse time with a ``file:line`` error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Tuple

from ..automata.nta import TEXT
from .diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover
    from .engine import LintContext, LintRule

__all__ = ["rules"]


def _check_unreachable_states(ctx: "LintContext") -> Iterator[Diagnostic]:
    transducer = ctx.transducer
    reachable = transducer.reachable_states()
    for state in sorted(transducer.states - reachable):
        yield Diagnostic(
            code="TP101",
            severity="warning",
            message=(
                "state %r is unreachable: no chain of rules from the initial "
                "state %r ever calls it" % (state, transducer.initial)
            ),
            location=ctx.sources.state_location(state),
            data={"state": state},
        )


def _check_dead_rules(ctx: "LintContext") -> Iterator[Diagnostic]:
    transducer = ctx.transducer
    realizable = ctx.realizable_rules()
    reachable = transducer.reachable_states()
    all_rules: List[Tuple[str, str]] = sorted(
        list(transducer.rules) + [(state, TEXT) for state in transducer.text_states]
    )
    for state, label in all_rules:
        if state not in reachable:
            continue  # TP101 already explains every rule of this state
        if (state, label) in realizable:
            continue
        if label == TEXT:
            detail = "state %r never processes a text node on any valid document" % state
        else:
            detail = (
                "no valid document reaches state %r at a <%s> node "
                "(Lemma 4.8 path-automaton product)" % (state, label)
            )
        yield Diagnostic(
            code="TP102",
            severity="warning",
            message="rule (%s, %s) can never fire: %s" % (state, label, detail),
            rule=(state, label),
            location=ctx.sources.rule_location((state, label)),
        )


def _check_noop_rules(ctx: "LintContext") -> Iterator[Diagnostic]:
    for (state, label), rhs in sorted(ctx.transducer.rules.items()):
        if rhs:
            continue
        yield Diagnostic(
            code="TP103",
            severity="warning",
            message=(
                "rule (%s, %s) has an empty right-hand side: it behaves exactly "
                "like having no rule (the subtree is deleted); drop it or keep "
                "the deletion implicit" % (state, label)
            ),
            rule=(state, label),
            location=ctx.sources.rule_location((state, label)),
        )


def _check_implicit_deletions(ctx: "LintContext") -> Iterator[Diagnostic]:
    uncovered = ctx.uncovered_pairs()
    for (state, label), schema_state in sorted(uncovered.items()):
        yield Diagnostic(
            code="TP104",
            severity="info",
            message=(
                "no rule for (%s, %s): <%s> subtrees reached in state %r are "
                "silently deleted (fine if the deletion is intended)"
                % (state, label, label, state)
            ),
            rule=(state, label),
            location=ctx.sources.state_location(state),
            data={"schema_state": repr(schema_state)},
        )


def _check_text_drops(ctx: "LintContext") -> Iterator[Diagnostic]:
    for state, schema_state in sorted(ctx.text_drop_states().items()):
        yield Diagnostic(
            code="TP105",
            severity="info",
            message=(
                "state %r reaches text nodes on valid documents but has no "
                "'text' rule: those text values are dropped" % state
            ),
            rule=(state, TEXT),
            location=ctx.sources.state_location(state),
            data={"schema_state": repr(schema_state)},
        )


def rules() -> Tuple["LintRule", ...]:
    """The TP1xx rule registry entries."""
    from .engine import LintRule

    return (
        LintRule("TP101", "unreachable-state", "warning", _check_unreachable_states,
                 needs_schema=False),
        LintRule("TP102", "dead-rule", "warning", _check_dead_rules),
        LintRule("TP103", "noop-rule", "warning", _check_noop_rules, needs_schema=False),
        LintRule("TP104", "implicit-deletion", "info", _check_implicit_deletions),
        LintRule("TP105", "text-dropped", "info", _check_text_drops),
    )
