"""The :class:`Diagnostic` data model shared by all lint rules.

A diagnostic is an explainable verdict: a stable code (``TP302``), a
severity, a human-readable message, and — where the analysis can
localize blame — the responsible transducer rule, its source location
in the ``.tdx``/``.dtd`` file, a witness text path, and the smallest
counter-example document.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..trees.parser import serialize_tree
from ..trees.tree import Tree
from ..trees.xmlio import tree_to_xml

__all__ = [
    "SEVERITIES",
    "severity_order",
    "SourceLocation",
    "SourceInfo",
    "Diagnostic",
]

#: Recognized severities, weakest first.
SEVERITIES: Tuple[str, ...] = ("info", "warning", "error")

_ORDER = {severity: rank for rank, severity in enumerate(SEVERITIES)}


def severity_order(severity: str) -> int:
    """The rank of a severity (``info`` < ``warning`` < ``error``)."""
    try:
        return _ORDER[severity]
    except KeyError:
        raise ValueError("unknown severity %r; expected one of %r" % (severity, SEVERITIES))


@dataclass(frozen=True)
class SourceLocation:
    """A ``file:line`` pointer into an input file (line may be unknown)."""

    path: str
    line: Optional[int] = None

    def __str__(self) -> str:
        if self.line is None:
            return self.path
        return "%s:%d" % (self.path, self.line)


@dataclass(frozen=True)
class SourceInfo:
    """Side-band location data collected by the CLI loaders.

    Maps transducer rules / states and schema labels back to the line
    of the ``.tdx``/``.dtd`` file that declared them, so diagnostics
    can point at ``file:line`` instead of only naming the rule.
    """

    transducer_path: Optional[str] = None
    schema_path: Optional[str] = None
    #: ``(state, label) -> line`` for transducer rules (text rules use
    #: the label ``"text"``).
    rule_lines: Mapping[Tuple[str, str], int] = field(default_factory=dict)
    #: ``state -> line`` of the first mention of each transducer state.
    state_lines: Mapping[str, int] = field(default_factory=dict)
    #: ``label -> line`` of each schema content-model definition.
    label_lines: Mapping[str, int] = field(default_factory=dict)

    def rule_location(self, rule: Tuple[str, str]) -> Optional[SourceLocation]:
        if self.transducer_path is None:
            return None
        return SourceLocation(self.transducer_path, self.rule_lines.get(rule))

    def state_location(self, state: str) -> Optional[SourceLocation]:
        if self.transducer_path is None:
            return None
        return SourceLocation(self.transducer_path, self.state_lines.get(state))

    def label_location(self, label: str) -> Optional[SourceLocation]:
        if self.schema_path is None:
            return None
        return SourceLocation(self.schema_path, self.label_lines.get(label))

    def schema_location(self) -> Optional[SourceLocation]:
        if self.schema_path is None:
            return None
        return SourceLocation(self.schema_path)


@dataclass(frozen=True)
class Diagnostic:
    """One coded finding of the lint engine.

    Attributes
    ----------
    code:
        Stable identifier (``TP101`` ... ``TP402``).
    severity:
        ``"error"`` (text-preservation is violated), ``"warning"``
        (almost certainly a mistake), or ``"info"`` (noteworthy but
        often intentional, e.g. deliberate deletions).
    message:
        One-line human-readable explanation.
    rule:
        The responsible transducer rule ``(state, label)``, when blame
        can be localized.
    location:
        ``file:line`` of the blamed construct, when the inputs came
        from files.
    path:
        A witness text path (ancestor labels ending in ``text``).
    witness:
        The smallest counter-example document, value-unique, when the
        finding has one.
    data:
        Extra code-specific structured details (JSON-serializable).
    """

    code: str
    severity: str
    message: str
    rule: Optional[Tuple[str, str]] = None
    location: Optional[SourceLocation] = None
    path: Optional[Tuple[str, ...]] = None
    witness: Optional[Tree] = None
    data: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        severity_order(self.severity)  # validates

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable view of the diagnostic."""
        out: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.rule is not None:
            out["rule"] = {"state": self.rule[0], "label": self.rule[1]}
        if self.location is not None:
            out["location"] = {"path": self.location.path, "line": self.location.line}
        if self.path is not None:
            out["path"] = list(self.path)
        if self.witness is not None:
            out["witness"] = serialize_tree(self.witness)
            out["witness_xml"] = tree_to_xml(self.witness).strip()
        if self.data:
            out["data"] = dict(self.data)
        return out
