"""tracemalloc-backed peak-memory gauges for the recorder.

The EXPTIME and non-elementary pipelines (Theorem 5.18's inverse-type
construction, the MSO negation tower) are memory-bound long before they
are time-bound, so the recorder's gauges carry an allocation peak:
:func:`track_peak_memory` brackets a block and records the peak traced
Python heap (KiB) into a gauge via ``gauge_max``.

Cost model: when no recorder is active the context manager yields
immediately — instrumentation stays free in normal runs.  With a
recorder, tracemalloc is started only if nothing else is tracing yet
(an enclosing probe or the benchmark harness may already be) and
stopped again on exit; nested probes therefore share one trace and
each records the peak observed so far, which ``gauge_max`` merges.
"""

from __future__ import annotations

import tracemalloc
from contextlib import contextmanager
from typing import Iterator

from .recorder import current, gauge_max

__all__ = ["track_peak_memory", "PEAK_MEMORY_GAUGE"]

#: The default gauge name; KiB of peak traced Python heap.
PEAK_MEMORY_GAUGE = "mem.peak_kb"


@contextmanager
def track_peak_memory(gauge_name: str = PEAK_MEMORY_GAUGE) -> Iterator[None]:
    """Record the block's peak traced allocation into ``gauge_name``.

    No-op (and allocation-free tracing-wise) when no recorder is
    installed.
    """
    if current() is None:
        yield
        return
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    try:
        yield
    finally:
        _current_bytes, peak_bytes = tracemalloc.get_traced_memory()
        gauge_max(gauge_name, peak_bytes / 1024.0)
        if started_here:
            tracemalloc.stop()
