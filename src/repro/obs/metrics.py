"""Live-metrics primitives: log₂ histograms, rate meters, sampled gauges.

The counters and gauges of :mod:`repro.obs.recorder` are *aggregates*:
one number per name, known only after the run.  A long-running audit
service (and any before/after performance claim about the PTIME /
EXPTIME hot paths) needs *distributions* and *time series*:

* :class:`Histogram` — a fixed **log₂-bucket** latency/size histogram.
  Bucket ``i`` covers ``(2^(i-1), 2^i]`` (bucket 0 is ``(-inf, 1]``),
  so 64 buckets span everything from single states to 2⁶⁴, the bucket
  index is one ``bit_length`` call, and two histograms merge by adding
  bucket counts — associative and loss-free across the corpus
  ``ProcessPool`` boundary.  ``p50/p90/p99`` come from linear
  interpolation inside the winning bucket, clamped to the observed
  ``min``/``max``.
* :class:`Meter` — an event-rate meter: a count plus the elapsed
  observation window.  Merging keeps the *longest* window (workers run
  concurrently, so windows overlap rather than add).
* :class:`SampleSeries` — a bounded time series of periodic gauge
  samples (wall-clock ``ts`` + value), the backing store of the
  ``--metrics`` JSONL timeline.

All three serialize to plain JSON with **deterministically ordered
keys** (bucket lists sorted by upper bound, registry maps sorted by
name), so two runs of the same work produce byte-identical exposition
regardless of ``PYTHONHASHSEED`` or insertion order.

Exposition: :func:`render_openmetrics` writes the Prometheus /
OpenMetrics text format (cumulative ``le`` buckets, ``_sum``/
``_count``, terminating ``# EOF``) and :func:`validate_openmetrics` is
the strict parser CI runs against it.  :func:`write_timeline_jsonl`
writes the sampled series as a self-identifying JSONL timeline
(header line ``{"kind": "metrics-timeline", ...}``), which
``trace-diff``/``explain`` recognize and reject with a clear message
instead of a traceback.
"""

from __future__ import annotations

import json
import math
import re
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, TextIO, Tuple, Union

__all__ = [
    "Histogram",
    "Meter",
    "SampleSeries",
    "bucket_index",
    "bucket_upper_bound",
    "merge_registry",
    "registry_to_jsonable",
    "histograms_from_jsonable",
    "meters_from_jsonable",
    "samples_from_jsonable",
    "render_openmetrics",
    "validate_openmetrics",
    "metric_family_name",
    "TIMELINE_KIND",
    "write_timeline_jsonl",
    "read_timeline_jsonl",
    "sniff_jsonl_kind",
    "MAX_BUCKET",
    "DEFAULT_SERIES_MAXLEN",
]

#: Bucket indices are clamped to this, so the sparse bucket table has a
#: fixed, finite key space (values beyond 2**64 land in the top bucket).
MAX_BUCKET = 64

#: How many trailing samples a :class:`SampleSeries` retains.
DEFAULT_SERIES_MAXLEN = 512

#: The ``kind`` header identifying a metrics timeline JSONL file.
TIMELINE_KIND = "metrics-timeline"


def bucket_index(value: float) -> int:
    """The log₂ bucket of ``value``: 0 for anything ≤ 1, else
    ``ceil(log2(value))``, clamped to :data:`MAX_BUCKET`."""
    if value <= 1.0 or value != value:  # NaN observes into bucket 0
        return 0
    if math.isinf(value):
        return MAX_BUCKET
    index = (int(math.ceil(value)) - 1).bit_length()
    return index if index < MAX_BUCKET else MAX_BUCKET


def bucket_upper_bound(index: int) -> float:
    """The inclusive upper bound of bucket ``index`` (``2**index``)."""
    return float(2 ** index)


class Histogram:
    """A mergeable fixed-log₂-bucket histogram (see the module doc for
    the bucket scheme)."""

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.buckets: Dict[int, int] = {}  # sparse: index -> count

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into self (bucket counts add — associative)."""
        self.count += other.count
        self.total += other.total
        if other.minimum is not None and (
            self.minimum is None or other.minimum < self.minimum
        ):
            self.minimum = other.minimum
        if other.maximum is not None and (
            self.maximum is None or other.maximum > self.maximum
        ):
            self.maximum = other.maximum
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count

    def quantile(self, q: float) -> float:
        """An estimate of the ``q``-quantile by linear interpolation
        inside the winning bucket, clamped to the observed range."""
        if self.count == 0:
            return 0.0
        assert self.minimum is not None and self.maximum is not None
        q = min(max(q, 0.0), 1.0)
        target = q * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            in_bucket = self.buckets[index]
            if cumulative + in_bucket >= target:
                lower = 0.0 if index == 0 else bucket_upper_bound(index - 1)
                upper = bucket_upper_bound(index)
                fraction = (
                    (target - cumulative) / in_bucket if in_bucket else 0.0
                )
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.minimum), self.maximum)
            cumulative += in_bucket
        return self.maximum

    def summary(self) -> Dict[str, float]:
        """The p50/p90/p99 summary stored by bench entries and shown by
        the exporters (key-sorted for byte-stable serialization)."""
        return {
            "count": float(self.count),
            "max": float(self.maximum or 0.0),
            "min": float(self.minimum or 0.0),
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "sum": self.total,
        }

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain JSON types; buckets as ``[upper_bound, count]`` pairs
        sorted by bound, so serialization is insertion-order-free."""
        return {
            "buckets": [
                [bucket_upper_bound(index), self.buckets[index]]
                for index in sorted(self.buckets)
            ],
            "count": self.count,
            "max": self.maximum,
            "min": self.minimum,
            "sum": self.total,
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "Histogram":
        histogram = cls()
        histogram.count = int(payload.get("count", 0))
        histogram.total = float(payload.get("sum", 0.0))
        minimum = payload.get("min")
        maximum = payload.get("max")
        histogram.minimum = None if minimum is None else float(minimum)
        histogram.maximum = None if maximum is None else float(maximum)
        for upper, count in payload.get("buckets", ()):
            # Recover the bucket index from the stored upper bound (2**i).
            index = max(0, int(round(math.log2(upper)))) if upper >= 1 else 0
            histogram.buckets[index] = histogram.buckets.get(index, 0) + int(count)
        return histogram

    def __repr__(self) -> str:
        return "Histogram(count=%d, p50=%g, p99=%g)" % (
            self.count, self.quantile(0.5), self.quantile(0.99),
        )


class Meter:
    """An event-rate meter: total count over an observation window.

    The window is the span between the first and most recent
    :meth:`mark` (monotonic clock).  Windows from concurrent processes
    overlap, so :meth:`merge` keeps the longest window rather than
    adding — the merged rate reads "events per second of wall time",
    not a sum of per-worker rates.
    """

    __slots__ = ("count", "elapsed_ns", "_first_ns")

    def __init__(self) -> None:
        self.count = 0.0
        self.elapsed_ns = 0
        self._first_ns: Optional[int] = None

    def mark(self, n: float = 1) -> None:
        now = time.perf_counter_ns()
        if self._first_ns is None:
            self._first_ns = now
        self.elapsed_ns = now - self._first_ns
        self.count += n

    def merge(self, other: "Meter") -> None:
        self.count += other.count
        if other.elapsed_ns > self.elapsed_ns:
            self.elapsed_ns = other.elapsed_ns

    def rate(self) -> float:
        """Events per second over the window (0.0 for a single mark)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.count / (self.elapsed_ns / 1e9)

    def to_jsonable(self) -> Dict[str, Any]:
        return {"count": self.count, "elapsed_ns": self.elapsed_ns}

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "Meter":
        meter = cls()
        meter.count = float(payload.get("count", 0))
        meter.elapsed_ns = int(payload.get("elapsed_ns", 0))
        return meter

    def __repr__(self) -> str:
        return "Meter(count=%g, rate=%.3f/s)" % (self.count, self.rate())


class SampleSeries:
    """A bounded time series of periodic gauge samples."""

    __slots__ = ("samples", "count", "maxlen")

    def __init__(self, maxlen: int = DEFAULT_SERIES_MAXLEN) -> None:
        self.samples: List[Tuple[float, float]] = []  # (wall ts, value)
        self.count = 0  # total ever sampled, including evicted
        self.maxlen = maxlen

    def sample(self, value: float, ts: Optional[float] = None) -> None:
        self.count += 1
        self.samples.append(
            (time.time() if ts is None else float(ts), float(value))
        )
        if len(self.samples) > self.maxlen:
            del self.samples[: len(self.samples) - self.maxlen]

    @property
    def last(self) -> Optional[float]:
        return self.samples[-1][1] if self.samples else None

    def merge(self, other: "SampleSeries") -> None:
        """Interleave by timestamp, keep the newest ``maxlen``."""
        self.count += other.count
        merged = sorted(self.samples + list(other.samples))
        self.samples = merged[max(0, len(merged) - self.maxlen):]

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "samples": [[ts, value] for ts, value in self.samples],
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "SampleSeries":
        series = cls()
        series.count = int(payload.get("count", 0))
        series.samples = [
            (float(ts), float(value)) for ts, value in payload.get("samples", ())
        ]
        return series

    def __repr__(self) -> str:
        return "SampleSeries(count=%d, last=%s)" % (self.count, self.last)


# ---------------------------------------------------------------------------
# Registry helpers (used by Recorder and Snapshot)
# ---------------------------------------------------------------------------

_Mergeable = Union[Histogram, Meter, SampleSeries]


def merge_registry(
    into: Dict[str, Any], other: Mapping[str, Any]
) -> None:
    """Fold one ``name -> Histogram|Meter|SampleSeries`` registry into
    another in place; missing names are deep-copied via the JSON form
    so the merged registry never aliases the source."""
    for name, value in other.items():
        existing = into.get(name)
        if existing is None:
            into[name] = type(value).from_jsonable(value.to_jsonable())
        else:
            existing.merge(value)


def registry_to_jsonable(registry: Mapping[str, _Mergeable]) -> Dict[str, Any]:
    """Name-sorted JSON form of a metrics registry."""
    return {name: registry[name].to_jsonable() for name in sorted(registry)}


def histograms_from_jsonable(payload: Mapping[str, Any]) -> Dict[str, Histogram]:
    return {str(k): Histogram.from_jsonable(v) for k, v in payload.items()}


def meters_from_jsonable(payload: Mapping[str, Any]) -> Dict[str, Meter]:
    return {str(k): Meter.from_jsonable(v) for k, v in payload.items()}


def samples_from_jsonable(payload: Mapping[str, Any]) -> Dict[str, SampleSeries]:
    return {str(k): SampleSeries.from_jsonable(v) for k, v in payload.items()}


# ---------------------------------------------------------------------------
# OpenMetrics exposition
# ---------------------------------------------------------------------------

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_family_name(name: str) -> str:
    """The OpenMetrics family name for a dotted repro metric name:
    ``repro_`` prefix, separators to underscores, and any trailing
    ``_total`` stripped (the counter sample suffix re-adds it)."""
    family = "repro_" + _SANITIZE_RE.sub("_", name)
    if family.endswith("_total"):
        family = family[: -len("_total")]
    return family


def _format_number(value: float) -> str:
    if value != value or math.isinf(value):
        return "+Inf" if value > 0 else ("-Inf" if value < 0 else "NaN")
    if float(value).is_integer() and abs(value) < 1e15:
        return "%d" % int(value)
    return repr(float(value))


def render_openmetrics(
    counters: Mapping[str, float],
    gauges: Mapping[str, float],
    histograms: Mapping[str, Histogram],
    meters: Mapping[str, Meter],
) -> str:
    """The Prometheus/OpenMetrics text exposition of one run's
    registries.  Families are emitted in sorted order with ``# HELP``
    carrying the original dotted name, histogram buckets are cumulative
    ``le`` counts ending in ``+Inf``, and the document terminates with
    ``# EOF`` — byte-identical for identical registries regardless of
    hash seed or insertion order.
    """
    lines: List[str] = []
    families: List[Tuple[str, str, str, List[str]]] = []

    for name in counters:
        family = metric_family_name(name)
        families.append((
            family, "counter", name,
            ["%s_total %s" % (family, _format_number(counters[name]))],
        ))
    for name in gauges:
        family = metric_family_name(name) + "_gauge"
        families.append((
            family, "gauge", name,
            ["%s %s" % (family, _format_number(gauges[name]))],
        ))
    for name in meters:
        meter = meters[name]
        family = metric_family_name(name) + "_rate"
        families.append((
            family, "gauge", name,
            ["%s %s" % (family, _format_number(meter.rate()))],
        ))
        count_family = metric_family_name(name) + "_events"
        families.append((
            count_family, "counter", name,
            ["%s_total %s" % (count_family, _format_number(meter.count))],
        ))
    for name in histograms:
        histogram = histograms[name]
        family = metric_family_name(name)
        samples: List[str] = []
        cumulative = 0
        for index in sorted(histogram.buckets):
            cumulative += histogram.buckets[index]
            samples.append(
                '%s_bucket{le="%s"} %d'
                % (family, _format_number(bucket_upper_bound(index)), cumulative)
            )
        samples.append('%s_bucket{le="+Inf"} %d' % (family, histogram.count))
        samples.append("%s_sum %s" % (family, _format_number(histogram.total)))
        samples.append("%s_count %d" % (family, histogram.count))
        families.append((family, "histogram", name, samples))

    for family, metric_type, source, samples in sorted(families):
        lines.append("# HELP %s repro metric %s" % (family, source))
        lines.append("# TYPE %s %s" % (family, metric_type))
        lines.extend(samples)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)


def _parse_sample_value(text: str, line_no: int) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)
    except ValueError:
        raise ValueError("line %d: bad sample value %r" % (line_no, text)) from None


def validate_openmetrics(text: str) -> Dict[str, Dict[str, Any]]:
    """Strictly parse an OpenMetrics document (the CI gate).

    Enforces: a single terminating ``# EOF``; ``# TYPE`` before any
    sample of a family; family names valid and declared in sorted order
    (the determinism contract); histogram buckets with ascending ``le``
    and non-decreasing cumulative counts, a ``+Inf`` bucket equal to
    ``_count``, and a ``_sum`` sample; no duplicate sample lines.
    Returns ``{family: {"type": ..., "samples": {line: value}}}``.
    """
    lines = text.split("\n")
    if not lines or lines[-1] != "":
        raise ValueError("document must end with a trailing newline")
    body = lines[:-1]
    if not body or body[-1] != "# EOF":
        raise ValueError("document must terminate with '# EOF'")
    if body.count("# EOF") != 1:
        raise ValueError("multiple '# EOF' terminators")

    families: Dict[str, Dict[str, Any]] = {}
    declared_order: List[str] = []
    seen_samples: set = set()
    for line_no, line in enumerate(body[:-1], start=1):
        if not line:
            raise ValueError("line %d: blank line" % line_no)
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2:
                raise ValueError("line %d: malformed TYPE line" % line_no)
            family, metric_type = parts
            if not _NAME_RE.match(family):
                raise ValueError(
                    "line %d: invalid family name %r" % (line_no, family)
                )
            if metric_type not in ("counter", "gauge", "histogram"):
                raise ValueError(
                    "line %d: unknown metric type %r" % (line_no, metric_type)
                )
            if family in families:
                raise ValueError(
                    "line %d: duplicate TYPE for %r" % (line_no, family)
                )
            if declared_order and family <= declared_order[-1]:
                raise ValueError(
                    "line %d: family %r out of sorted order (after %r)"
                    % (line_no, family, declared_order[-1])
                )
            declared_order.append(family)
            families[family] = {"type": metric_type, "samples": {}}
            continue
        if line.startswith("#"):
            raise ValueError("line %d: unknown comment form" % line_no)
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError("line %d: malformed sample line %r" % (line_no, line))
        sample_name = match.group("name")
        value = _parse_sample_value(match.group("value"), line_no)
        owner = None
        for family in families:
            if sample_name == family or (
                sample_name.startswith(family + "_")
                and sample_name[len(family) + 1:] in ("total", "sum", "count", "bucket")
            ):
                owner = family
        if owner is None:
            raise ValueError(
                "line %d: sample %r has no preceding TYPE declaration"
                % (line_no, sample_name)
            )
        sample_key = line.rsplit(" ", 1)[0]
        if sample_key in seen_samples:
            raise ValueError("line %d: duplicate sample %r" % (line_no, sample_key))
        seen_samples.add(sample_key)
        families[owner]["samples"][sample_key] = value

    for family, info in families.items():
        if info["type"] != "histogram":
            continue
        buckets = [
            (key, value) for key, value in info["samples"].items()
            if key.startswith(family + "_bucket{")
        ]
        if not buckets:
            raise ValueError("histogram %r has no buckets" % family)
        parsed: List[Tuple[float, float]] = []
        for key, value in buckets:
            le_text = key.split('le="', 1)[1].rstrip('"}')
            parsed.append((_parse_sample_value(le_text, 0), value))
        parsed.sort()
        previous = -1.0
        for le_value, count in parsed:
            if count < previous:
                raise ValueError(
                    "histogram %r buckets not cumulative (le=%g)"
                    % (family, le_value)
                )
            previous = count
        if not math.isinf(parsed[-1][0]):
            raise ValueError("histogram %r missing the +Inf bucket" % family)
        count_key = "%s_count" % family
        if count_key not in info["samples"]:
            raise ValueError("histogram %r missing _count" % family)
        if info["samples"][count_key] != parsed[-1][1]:
            raise ValueError(
                "histogram %r: +Inf bucket (%g) != _count (%g)"
                % (family, parsed[-1][1], info["samples"][count_key])
            )
        if "%s_sum" % family not in info["samples"]:
            raise ValueError("histogram %r missing _sum" % family)
    return families


# ---------------------------------------------------------------------------
# The JSONL timeline
# ---------------------------------------------------------------------------


def write_timeline_jsonl(
    samples: Mapping[str, SampleSeries],
    destination: Union[str, TextIO],
    run: Optional[str] = None,
) -> int:
    """Write the sampled series as a self-identifying JSONL timeline:
    a ``{"kind": "metrics-timeline", ...}`` header line, then one
    ``{"ts", "metric", "value"}`` object per sample ordered by
    ``(ts, metric)``.  Returns the number of sample lines written."""
    header: Dict[str, Any] = {
        "kind": TIMELINE_KIND,
        "version": 1,
        "series": sorted(samples),
    }
    if run:
        header["run"] = run
    rows = sorted(
        (ts, name, value)
        for name, series in samples.items()
        for ts, value in series.samples
    )
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps({"metric": name, "ts": ts, "value": value}, sort_keys=True)
        for ts, name, value in rows
    )
    text = "\n".join(lines) + "\n"
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        destination.write(text)
    return len(rows)


def read_timeline_jsonl(
    source: Union[str, TextIO, Iterable[str]]
) -> List[Dict[str, Any]]:
    """Parse a timeline back into its sample rows (header validated
    and stripped)."""
    if isinstance(source, str):
        with open(source, encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    rows: List[Dict[str, Any]] = []
    header_seen = False
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            payload = json.loads(stripped)
        except ValueError:
            raise ValueError("line %d: not valid JSON" % number) from None
        if not header_seen:
            if not (isinstance(payload, dict) and payload.get("kind") == TIMELINE_KIND):
                raise ValueError(
                    "line %d: not a metrics timeline (missing the "
                    '{"kind": "%s"} header)' % (number, TIMELINE_KIND)
                )
            header_seen = True
            continue
        rows.append(payload)
    if not header_seen:
        raise ValueError("empty file: not a metrics timeline")
    return rows


def sniff_jsonl_kind(text: str) -> Optional[str]:
    """The ``kind`` of a JSONL artifact's first line, if it is one
    (``"metrics-timeline"`` for a ``--metrics`` timeline,
    ``"obs-journal"`` for a journal segment file — see
    :data:`repro.obs.journal.JOURNAL_KIND` — ``"repro-batch-status"``
    for a status file; ``None`` for anything that is not line-wise
    JSON objects)."""
    first = ""
    for line in text.splitlines():
        if line.strip():
            first = line.strip()
            break
    if not first.startswith("{"):
        return None
    try:
        payload = json.loads(first)
    except ValueError:
        return None
    if not isinstance(payload, dict):
        return None
    kind = payload.get("kind")
    return str(kind) if isinstance(kind, str) else None
