"""Work attribution: turning labeled counters into hot-rule tables.

The flat counters answer *how much* work a run did
(``ptime.product_states: 210``); the labeled registry kept next to them
(:attr:`repro.obs.recorder.Recorder.labeled`) answers *where it went* —
per transducer rule, per dataflow pass, per MSO formula node.  This
module is the read side: it folds one run's flat + labeled registries
into :class:`AttributionTable` rows with coverage shares, groups them
by procedure (the dotted counter-name prefix), and renders the result
as text, markdown, or JSON for ``python -m repro explain``.

A table's ``coverage`` is the fraction of the flat total that carries
labels at all.  Instrumented hot paths attribute every unit of work:
states discovered by a transducer rule carry ``rule=state/symbol``
labels, and the constant bookkeeping states (the initial seed, the
``_ACC``/``_D`` sinks) carry parenthesized pseudo-rules such as
``(seed)``/``(sink)`` — so coverage at or near 1.0 is the expected
shape and a low value flags an instrumentation gap, not a property of
the input.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .recorder import LabelKey

__all__ = [
    "AttributionRow",
    "AttributionTable",
    "attribution_tables",
    "group_by_label",
    "attribution_to_jsonable",
    "render_attribution_text",
    "render_attribution_markdown",
    "render_attribution",
]


def _format_value(value: float) -> str:
    return "%d" % value if float(value).is_integer() else "%g" % value


def format_label_key(key: LabelKey) -> str:
    """``rule=q0/recipe site=copying_nfa`` — stable, greppable."""
    return " ".join("%s=%s" % (k, v) for k, v in key)


@dataclass
class AttributionRow:
    """One label combination's share of a counter."""

    labels: Tuple[Tuple[str, str], ...]
    value: float
    share: float  # of the flat total (0..1); 0 when the total is 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "labels": dict(self.labels),
            "value": self.value,
            "share": round(self.share, 6),
        }


@dataclass
class AttributionTable:
    """One counter's attribution: flat total, labeled coverage, top rows."""

    counter: str
    total: float
    attributed: float
    rows: List[AttributionRow] = field(default_factory=list)
    hidden: int = 0  # rows beyond the top-K cut, folded into "other"

    @property
    def procedure(self) -> str:
        """The subsystem prefix (``ptime``, ``typecheck``, ``mso``...)."""
        return self.counter.split(".", 1)[0]

    @property
    def coverage(self) -> float:
        """Fraction of the flat total carrying labels (0..1)."""
        return self.attributed / self.total if self.total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counter": self.counter,
            "procedure": self.procedure,
            "total": self.total,
            "attributed": self.attributed,
            "coverage": round(self.coverage, 6),
            "rows": [row.to_dict() for row in self.rows],
            "hidden_rows": self.hidden,
        }


def attribution_tables(
    counters: Mapping[str, float],
    labeled: Mapping[str, Mapping[LabelKey, float]],
    top: int = 10,
) -> List[AttributionTable]:
    """One table per labeled counter, rows sorted hottest-first.

    Ties break on the label key so the output is deterministic; rows
    past ``top`` are dropped but counted in :attr:`AttributionTable.hidden`
    (their mass stays visible through ``attributed``).
    """
    tables: List[AttributionTable] = []
    for name in sorted(labeled):
        by_key = labeled[name]
        total = counters.get(name, sum(by_key.values()))
        ordered = sorted(by_key.items(), key=lambda item: (-item[1], item[0]))
        rows = [
            AttributionRow(
                labels=key,
                value=value,
                share=(value / total if total else 0.0),
            )
            for key, value in ordered[: max(top, 0)]
        ]
        tables.append(
            AttributionTable(
                counter=name,
                total=total,
                attributed=sum(by_key.values()),
                rows=rows,
                hidden=max(len(ordered) - max(top, 0), 0),
            )
        )
    return tables


def group_by_label(
    by_key: Mapping[LabelKey, float], label: str
) -> Dict[str, float]:
    """Roll one counter's label combinations up along one dimension:
    ``group_by_label(labeled["ptime.product_states"], "rule")`` sums
    every combination sharing the same ``rule=`` value.  Combinations
    without the dimension land under ``"(unlabeled)"``."""
    out: Dict[str, float] = {}
    for key, value in by_key.items():
        bucket = dict(key).get(label, "(unlabeled)")
        out[bucket] = out.get(bucket, 0) + value
    return out


def attribution_to_jsonable(
    tables: List[AttributionTable]
) -> List[Dict[str, Any]]:
    return [table.to_dict() for table in tables]


def _coverage_note(table: AttributionTable) -> str:
    return "%s/%s attributed (%.1f%%)" % (
        _format_value(table.attributed),
        _format_value(table.total),
        100.0 * table.coverage,
    )


def render_attribution_text(tables: List[AttributionTable]) -> str:
    """The ``explain`` terminal view: per-procedure sections, one
    aligned hot-rule table per counter."""
    if not tables:
        return "no labeled counters recorded\n"
    lines: List[str] = []
    current_procedure: Optional[str] = None
    for table in tables:
        if table.procedure != current_procedure:
            if lines:
                lines.append("")
            lines.append("procedure %s" % table.procedure)
            current_procedure = table.procedure
        lines.append(
            "  %s  total %s — %s"
            % (table.counter, _format_value(table.total), _coverage_note(table))
        )
        if not table.rows:
            continue
        width = max(len(format_label_key(row.labels)) for row in table.rows)
        for row in table.rows:
            lines.append(
                "    %-*s  %8s  %5.1f%%"
                % (width, format_label_key(row.labels),
                   _format_value(row.value), 100.0 * row.share)
            )
        if table.hidden:
            lines.append("    ... %d more label combinations" % table.hidden)
    return "\n".join(lines) + "\n"


def render_attribution_markdown(tables: List[AttributionTable]) -> str:
    if not tables:
        return "_no labeled counters recorded_\n"
    lines: List[str] = []
    current_procedure: Optional[str] = None
    for table in tables:
        if table.procedure != current_procedure:
            lines.append("## Procedure `%s`" % table.procedure)
            lines.append("")
            current_procedure = table.procedure
        lines.append(
            "### `%s` — total %s, %s"
            % (table.counter, _format_value(table.total), _coverage_note(table))
        )
        lines.append("")
        if table.rows:
            lines.append("| labels | value | share |")
            lines.append("| --- | ---: | ---: |")
            for row in table.rows:
                lines.append(
                    "| `%s` | %s | %.1f%% |"
                    % (format_label_key(row.labels),
                       _format_value(row.value), 100.0 * row.share)
                )
            if table.hidden:
                lines.append(
                    "| _... %d more label combinations_ | | |" % table.hidden
                )
            lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def render_attribution(
    tables: List[AttributionTable], fmt: str = "text"
) -> str:
    if fmt == "json":
        return json.dumps(attribution_to_jsonable(tables), indent=2) + "\n"
    if fmt == "markdown":
        return render_attribution_markdown(tables)
    return render_attribution_text(tables)
