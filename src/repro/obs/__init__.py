"""Zero-dependency instrumentation for the decision procedures.

The complexity results this repo reproduces are *about* automaton
growth: the PTIME pipeline of Theorem 4.11 lives or dies on the size of
the Lemma 4.8 path automata and their products, the EXPTIME and
non-elementary results (Theorems 5.18/5.12) on MSO-compiled automaton
blow-up.  This package makes that growth observable:

* ``obs.span(name)`` — a context-local span tree with wall time and
  attached attributes (``with obs.span("ptime.product") as sp:
  sp.set("states", n)``);
* ``obs.add(name)`` / ``obs.set_gauge(name, value)`` — typed counters
  and gauges per subsystem (``nta.*``, ``ptime.*``, ``mso.*``,
  ``xpath.*``, ``typecheck.*``, ``safety.*``, ``lint.*``,
  ``oracle.*``);
* exporters — text tree, round-trippable JSON, and Chrome
  ``trace_event`` JSON for ``chrome://tracing`` / Perfetto;
* ``obs.Snapshot`` — a picklable, mergeable view of a recorder's
  counters/gauges, used to ship per-job observations across the
  :mod:`repro.corpus` worker-process boundary;
* ``obs.Journal`` / ``obs.replay_journal`` — the crash-safe on-disk
  event journal (see :mod:`repro.obs.journal`) behind ``serve
  --journal-dir``, ``batch --journal`` and ``python -m repro
  journal``, with :mod:`repro.obs.flight` holding the in-memory
  flight recorder dumped to ``crash-*.json`` postmortems.

Nothing records unless a recorder is installed::

    from repro import obs

    with obs.recording() as rec:
        is_text_preserving(transducer, schema)
    print(obs.render_text(rec))

When no recorder is active every instrumentation point is a single
ContextVar read and truthiness check — the E5 family shows no
measurable slowdown with instrumentation disabled.

CLI surface: ``python -m repro profile TDX SCHEMA``, the
``--trace FILE`` / ``--stats`` flags on ``check`` and ``lint``, and
``python -m repro bench-report`` over the stored benchmark trajectory
(see :mod:`repro.obs.bench`).
"""

from . import attr, bench, diff, flight
from .attr import (
    AttributionRow,
    AttributionTable,
    attribution_tables,
    group_by_label,
    render_attribution,
)
from .bench import (
    BenchEntry,
    BenchHistory,
    BenchRun,
    Comparison,
    Finding,
    RunProvenance,
    collect_provenance,
    compare_runs,
    render_report,
)
from .export import (
    from_dict,
    render_json,
    render_text,
    span_from_dict,
    span_to_dict,
    spans_from_chrome_trace,
    to_chrome_trace,
    to_dict,
    write_chrome_trace,
)
from .log import (
    DEBUG,
    ERROR,
    INFO,
    LEVELS,
    WARNING,
    LogEvent,
    debug,
    error,
    events_to_dicts,
    info,
    level_name,
    log,
    parse_level,
    read_log_jsonl,
    warning,
    write_log_jsonl,
)
from .diff import (
    ProfileDelta,
    ProfileDiff,
    RunProfile,
    SpanStat,
    diff_profiles,
    load_run_profile,
    profile_from_payload,
    profile_from_recorder,
    render_diff,
    span_profile_rows,
)
from .flight import FlightRecorder
from .journal import (
    JOURNAL_KIND,
    Journal,
    JournalRecord,
    JournalReplay,
    JournalScan,
    SegmentInfo,
    journal_segments,
    read_journal,
    replay_journal,
    scan_journal,
    tail_records,
)
from .memory import PEAK_MEMORY_GAUGE, track_peak_memory
from .metrics import (
    Histogram,
    Meter,
    SampleSeries,
    metric_family_name,
    read_timeline_jsonl,
    render_openmetrics,
    sniff_jsonl_kind,
    validate_openmetrics,
    write_timeline_jsonl,
)
from .recorder import (
    NULL_SPAN,
    LabelKey,
    Recorder,
    Span,
    add,
    current,
    enabled,
    gauge_max,
    label_key,
    mark,
    observe,
    recording,
    sample,
    set_gauge,
    span,
    timed,
)
from .snapshot import (
    Snapshot,
    labeled_from_jsonable,
    labeled_to_jsonable,
    merge_labeled,
)

__all__ = [
    "attr",
    "bench",
    "diff",
    "flight",
    "FlightRecorder",
    "JOURNAL_KIND",
    "Journal",
    "JournalRecord",
    "JournalReplay",
    "JournalScan",
    "SegmentInfo",
    "journal_segments",
    "read_journal",
    "replay_journal",
    "scan_journal",
    "tail_records",
    "AttributionRow",
    "AttributionTable",
    "attribution_tables",
    "group_by_label",
    "render_attribution",
    "ProfileDelta",
    "ProfileDiff",
    "RunProfile",
    "SpanStat",
    "diff_profiles",
    "load_run_profile",
    "profile_from_payload",
    "profile_from_recorder",
    "render_diff",
    "span_profile_rows",
    "LabelKey",
    "label_key",
    "labeled_to_jsonable",
    "labeled_from_jsonable",
    "merge_labeled",
    "BenchEntry",
    "BenchHistory",
    "BenchRun",
    "Comparison",
    "Finding",
    "RunProvenance",
    "collect_provenance",
    "compare_runs",
    "render_report",
    "track_peak_memory",
    "PEAK_MEMORY_GAUGE",
    "Span",
    "Snapshot",
    "Recorder",
    "recording",
    "current",
    "enabled",
    "span",
    "add",
    "set_gauge",
    "gauge_max",
    "observe",
    "mark",
    "sample",
    "timed",
    "Histogram",
    "Meter",
    "SampleSeries",
    "render_openmetrics",
    "validate_openmetrics",
    "metric_family_name",
    "write_timeline_jsonl",
    "read_timeline_jsonl",
    "sniff_jsonl_kind",
    "NULL_SPAN",
    "render_text",
    "to_dict",
    "from_dict",
    "render_json",
    "span_to_dict",
    "span_from_dict",
    "to_chrome_trace",
    "write_chrome_trace",
    "spans_from_chrome_trace",
    "DEBUG",
    "INFO",
    "WARNING",
    "ERROR",
    "LEVELS",
    "LogEvent",
    "log",
    "debug",
    "info",
    "warning",
    "error",
    "level_name",
    "parse_level",
    "events_to_dicts",
    "write_log_jsonl",
    "read_log_jsonl",
]
