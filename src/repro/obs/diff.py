"""Structural diffing of two exported runs: ``repro trace-diff``.

Two runs of the same pipeline produce span trees with the same *names*
but different ids and timings.  This module aligns them structurally:
every span is keyed by its **name-path** (``check/ptime.is_copying/
ptime.copying_product``), occurrences aggregate into one
:class:`SpanStat` per path, and the diff reports, worst divergence
first,

* duration deltas per aligned span path (plus paths present on only
  one side — a structural change in the pipeline itself);
* counter and gauge deltas;
* attribution deltas from the labeled registry — *which rule / pass /
  formula node* the counter delta is concentrated in.

Inputs are whatever the repo already exports: a Chrome trace written
by ``--trace``, a ``repro profile --json`` / ``Snapshot.to_dict``
document, or a ``BENCH_results.json`` / history run (entries
aggregate).  :func:`load_run_profile` sniffs the format.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .attr import format_label_key
from .recorder import LabelKey, Recorder, Span
from .snapshot import labeled_from_jsonable, merge_labeled

__all__ = [
    "SpanStat",
    "RunProfile",
    "ProfileDelta",
    "ProfileDiff",
    "profile_from_recorder",
    "profile_from_spans",
    "profile_from_payload",
    "load_run_profile",
    "diff_profiles",
    "span_profile_rows",
    "render_diff",
]


@dataclass
class SpanStat:
    """All occurrences of one span name-path, aggregated."""

    path: str
    count: int = 0
    duration_ns: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "count": self.count,
            "duration_ns": self.duration_ns,
        }


@dataclass
class RunProfile:
    """One run reduced to its comparable shape: span-path aggregates
    plus the counter/gauge/labeled registries."""

    label: str = ""
    spans: Dict[str, SpanStat] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    labeled: Dict[str, Dict[LabelKey, float]] = field(default_factory=dict)

    def record_span(self, path: str, duration_ns: int) -> None:
        stat = self.spans.setdefault(path, SpanStat(path=path))
        stat.count += 1
        stat.duration_ns += duration_ns


def _walk_spans(profile: RunProfile, span: Span, prefix: str) -> None:
    path = prefix + "/" + span.name if prefix else span.name
    profile.record_span(path, span.duration_ns)
    for child in span.children:
        _walk_spans(profile, child, path)


def profile_from_spans(spans: List[Span], label: str = "") -> RunProfile:
    profile = RunProfile(label=label)
    for root in spans:
        _walk_spans(profile, root, "")
    return profile


def profile_from_recorder(recorder: Recorder, label: str = "") -> RunProfile:
    profile = profile_from_spans(recorder.spans, label=label)
    profile.counters = dict(recorder.counters)
    profile.gauges = dict(recorder.gauges)
    profile.labeled = {
        name: dict(by_key) for name, by_key in recorder.labeled.items()
    }
    return profile


def span_profile_rows(spans: List[Span]) -> List[Dict[str, Any]]:
    """The JSON rows a :class:`BenchEntry` stores: one
    ``{"path", "count", "duration_ns"}`` per span name-path, sorted by
    path for byte stability."""
    profile = profile_from_spans(spans)
    return [profile.spans[path].to_dict() for path in sorted(profile.spans)]


def _spans_from_rows(profile: RunProfile, rows: Any) -> None:
    for row in rows or ():
        stat = profile.spans.setdefault(
            str(row["path"]), SpanStat(path=str(row["path"]))
        )
        stat.count += int(row.get("count", 1))
        stat.duration_ns += int(row.get("duration_ns", 0))


def _profile_from_chrome(payload: Mapping[str, Any], label: str) -> RunProfile:
    from .export import spans_from_chrome_trace

    profile = profile_from_spans(
        spans_from_chrome_trace(dict(payload)), label=label
    )
    for event in payload.get("traceEvents", ()):
        phase = event.get("ph")
        if phase == "C":
            profile.counters[str(event["name"])] = float(
                event.get("args", {}).get("value", 0)
            )
        elif phase == "M" and event.get("name") == "repro_labeled":
            merge_labeled(
                profile.labeled,
                labeled_from_jsonable(event.get("args", {}).get("labeled", {})),
            )
    return profile


def _profile_from_bench_run(payload: Mapping[str, Any], label: str) -> RunProfile:
    """A bench run aggregates over its entries: counters/labeled add,
    gauges keep the max — the run-level shape two CI runs compare by."""
    profile = RunProfile(label=label)
    for entry in payload.get("results", ()):
        for name, value in (entry.get("counters") or {}).items():
            profile.counters[name] = profile.counters.get(name, 0) + float(value)
        for name, value in (entry.get("gauges") or {}).items():
            if name not in profile.gauges or profile.gauges[name] < float(value):
                profile.gauges[name] = float(value)
        merge_labeled(
            profile.labeled, labeled_from_jsonable(entry.get("labeled") or {})
        )
        _spans_from_rows(profile, entry.get("span_profile"))
    return profile


def profile_from_payload(payload: Mapping[str, Any], label: str = "") -> RunProfile:
    """Build a profile from any exported-run JSON document the repo
    writes (Chrome trace, profile/Snapshot document, bench run)."""
    from .export import span_from_dict

    if "traceEvents" in payload:
        return _profile_from_chrome(payload, label)
    if "results" in payload:
        return _profile_from_bench_run(payload, label)
    # A ``repro profile`` export / Snapshot.to_dict document.
    profile = profile_from_spans(
        [span_from_dict(dict(span)) for span in payload.get("spans", ())],
        label=label,
    )
    profile.counters = {
        str(k): float(v) for k, v in (payload.get("counters") or {}).items()
    }
    profile.gauges = {
        str(k): float(v) for k, v in (payload.get("gauges") or {}).items()
    }
    profile.labeled = labeled_from_jsonable(payload.get("labeled") or {})
    return profile


def load_run_profile(path: str, label: str = "") -> RunProfile:
    """Read and sniff one exported-run artifact.

    Accepts a Chrome trace, a profile/Snapshot export, a bench run
    JSON, or a crash-safe journal (a ``serve --journal-dir`` / ``batch
    --journal`` directory, or one segment file) — a journal is
    replayed through :func:`repro.obs.journal.replay_journal` and its
    merged Snapshot profiled, so ``trace-diff`` can compare a dead
    process's run against a live trace.  Anything else — notably the
    observability layer's *own* line-oriented artifacts (a
    ``--metrics`` timeline, a ``--log`` JSONL, a batch status file) —
    raises a ValueError naming what the file actually is and what
    formats are expected, instead of a JSON-decode traceback."""
    if os.path.isdir(path):
        return _profile_from_journal(path, label)
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    try:
        payload = json.loads(text)
    except ValueError:
        from .metrics import sniff_jsonl_kind

        if sniff_jsonl_kind(text) == "obs-journal":
            return _profile_from_journal(path, label)
        raise ValueError(
            "%s: %s" % (path, _describe_non_profile(text))
        ) from None
    if not isinstance(payload, dict):
        raise ValueError("%s: not a JSON object" % path)
    return profile_from_payload(payload, label=label or path)


def _profile_from_journal(path: str, label: str = "") -> RunProfile:
    """Replay a journal and profile its merged Snapshot."""
    from .journal import replay_journal

    replay = replay_journal(path)
    payload = replay.snapshot.to_dict()
    return profile_from_payload(payload, label=label or path)


def _describe_non_profile(text: str) -> str:
    """Why a non-JSON file is not a run profile, by sniffing."""
    from .metrics import TIMELINE_KIND, sniff_jsonl_kind

    expected = (
        "expected a Chrome trace, a profile/Snapshot export, or a "
        "bench run JSON"
    )
    kind = sniff_jsonl_kind(text)
    if kind == TIMELINE_KIND:
        return (
            "this is a metrics timeline JSONL (written next to a "
            "--metrics file), not a run profile; %s" % expected
        )
    if kind is not None:
        return "this is a %r JSONL artifact, not a run profile; %s" % (
            kind, expected,
        )
    stripped = text.lstrip()
    if stripped.startswith("{"):
        first = stripped.splitlines()[0] if stripped.splitlines() else ""
        try:
            json.loads(first)
        except ValueError:
            pass
        else:
            return (
                "this looks like line-oriented JSONL (e.g. a --log "
                "file), not a run profile; %s" % expected
            )
    if stripped.startswith("# TYPE ") or stripped.startswith("# HELP "):
        return (
            "this looks like an OpenMetrics exposition (--metrics "
            "output), not a run profile; %s" % expected
        )
    return "not valid JSON; %s" % expected


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------


@dataclass
class ProfileDelta:
    """One aligned metric's divergence between run A and run B."""

    kind: str  # "span" | "counter" | "gauge" | "attribution"
    key: str  # span path, counter name, or "counter{labels}"
    a: Optional[float]  # None = absent on that side
    b: Optional[float]
    unit: str = ""  # "ns" for spans, "" for registries

    @property
    def delta(self) -> float:
        return (self.b or 0.0) - (self.a or 0.0)

    @property
    def status(self) -> str:
        if self.a is None:
            return "only-b"
        if self.b is None:
            return "only-a"
        return "changed" if self.delta else "same"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "key": self.key,
            "a": self.a,
            "b": self.b,
            "delta": self.delta,
            "status": self.status,
            "unit": self.unit,
        }


@dataclass
class ProfileDiff:
    """The full structural diff, each section worst-divergence first."""

    a_label: str
    b_label: str
    spans: List[ProfileDelta] = field(default_factory=list)
    counters: List[ProfileDelta] = field(default_factory=list)
    gauges: List[ProfileDelta] = field(default_factory=list)
    attribution: List[ProfileDelta] = field(default_factory=list)

    @property
    def diverging(self) -> List[ProfileDelta]:
        return [
            delta
            for section in (self.spans, self.counters, self.gauges, self.attribution)
            for delta in section
            if delta.status != "same"
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "a": self.a_label,
            "b": self.b_label,
            "spans": [delta.to_dict() for delta in self.spans],
            "counters": [delta.to_dict() for delta in self.counters],
            "gauges": [delta.to_dict() for delta in self.gauges],
            "attribution": [delta.to_dict() for delta in self.attribution],
        }


def _registry_deltas(
    kind: str, a: Mapping[str, float], b: Mapping[str, float]
) -> List[ProfileDelta]:
    deltas = [
        ProfileDelta(kind=kind, key=name, a=a.get(name), b=b.get(name))
        for name in sorted(set(a) | set(b))
    ]
    deltas.sort(key=lambda d: (-abs(d.delta), d.key))
    return deltas


def _attribution_deltas(
    a: Mapping[str, Mapping[LabelKey, float]],
    b: Mapping[str, Mapping[LabelKey, float]],
) -> List[ProfileDelta]:
    deltas: List[ProfileDelta] = []
    for name in sorted(set(a) | set(b)):
        a_keys = a.get(name, {})
        b_keys = b.get(name, {})
        for key in sorted(set(a_keys) | set(b_keys)):
            deltas.append(
                ProfileDelta(
                    kind="attribution",
                    key="%s{%s}" % (name, format_label_key(key)),
                    a=a_keys.get(key),
                    b=b_keys.get(key),
                )
            )
    deltas.sort(key=lambda d: (-abs(d.delta), d.key))
    return deltas


def diff_profiles(a: RunProfile, b: RunProfile) -> ProfileDiff:
    """Align by span name-path / registry name and sort every section
    by absolute divergence, worst first."""
    span_deltas = [
        ProfileDelta(
            kind="span",
            key=path,
            a=float(a.spans[path].duration_ns) if path in a.spans else None,
            b=float(b.spans[path].duration_ns) if path in b.spans else None,
            unit="ns",
        )
        for path in sorted(set(a.spans) | set(b.spans))
    ]
    span_deltas.sort(key=lambda d: (-abs(d.delta), d.key))
    return ProfileDiff(
        a_label=a.label or "A",
        b_label=b.label or "B",
        spans=span_deltas,
        counters=_registry_deltas("counter", a.counters, b.counters),
        gauges=_registry_deltas("gauge", a.gauges, b.gauges),
        attribution=_attribution_deltas(a.labeled, b.labeled),
    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _format_side(delta: ProfileDelta, value: Optional[float]) -> str:
    if value is None:
        return "-"
    if delta.unit == "ns":
        if value >= 1e9:
            return "%.3fs" % (value / 1e9)
        if value >= 1e6:
            return "%.2fms" % (value / 1e6)
        return "%.1fus" % (value / 1e3)
    return "%d" % value if float(value).is_integer() else "%g" % value


def _format_delta(delta: ProfileDelta) -> str:
    if delta.status == "only-a":
        return "removed"
    if delta.status == "only-b":
        return "added"
    if delta.unit == "ns":
        return "%+.2fms" % (delta.delta / 1e6)
    magnitude = delta.delta
    return ("%+d" % magnitude if float(magnitude).is_integer()
            else "%+g" % magnitude)


_SECTION_TITLES = (
    ("spans", "span durations (worst divergence first)"),
    ("counters", "counters"),
    ("gauges", "gauges"),
    ("attribution", "attribution (labeled counters)"),
)


def _section_rows(
    deltas: List[ProfileDelta], limit: int, include_same: bool = False
) -> Tuple[List[ProfileDelta], int]:
    rows = [d for d in deltas if include_same or d.status != "same"]
    hidden = max(len(rows) - limit, 0) if limit else 0
    return (rows[:limit] if limit else rows), hidden


def render_diff_text(diff: ProfileDiff, limit: int = 15) -> str:
    lines = ["trace-diff: %s -> %s" % (diff.a_label, diff.b_label)]
    diverging = diff.diverging
    lines.append(
        "%d diverging metric%s"
        % (len(diverging), "" if len(diverging) == 1 else "s")
    )
    for attr_name, title in _SECTION_TITLES:
        rows, hidden = _section_rows(getattr(diff, attr_name), limit)
        if not rows:
            continue
        lines.append("")
        lines.append("%s:" % title)
        width = min(max(len(row.key) for row in rows), 64)
        for row in rows:
            lines.append(
                "  %-*s  %10s -> %-10s  %s"
                % (width, row.key[:64], _format_side(row, row.a),
                   _format_side(row, row.b), _format_delta(row))
            )
        if hidden:
            lines.append("  ... %d more" % hidden)
    if not diverging:
        lines.append("")
        lines.append("runs are structurally identical.")
    return "\n".join(lines) + "\n"


def render_diff_markdown(diff: ProfileDiff, limit: int = 15) -> str:
    lines = ["# Trace diff", ""]
    lines.append("Comparing `%s` (A) against `%s` (B)." % (diff.a_label, diff.b_label))
    diverging = diff.diverging
    lines.append("")
    lines.append(
        "**%d diverging metric%s.**"
        % (len(diverging), "" if len(diverging) == 1 else "s")
    )
    for attr_name, title in _SECTION_TITLES:
        rows, hidden = _section_rows(getattr(diff, attr_name), limit)
        if not rows:
            continue
        lines.extend(["", "## %s" % title.capitalize(), ""])
        lines.append("| key | A | B | delta |")
        lines.append("| --- | ---: | ---: | ---: |")
        for row in rows:
            lines.append(
                "| `%s` | %s | %s | %s |"
                % (row.key, _format_side(row, row.a),
                   _format_side(row, row.b), _format_delta(row))
            )
        if hidden:
            lines.append("| _... %d more_ | | | |" % hidden)
    return "\n".join(lines) + "\n"


def render_diff(diff: ProfileDiff, fmt: str = "text", limit: int = 15) -> str:
    if fmt == "json":
        return json.dumps(diff.to_dict(), indent=2) + "\n"
    if fmt == "markdown":
        return render_diff_markdown(diff, limit)
    return render_diff_text(diff, limit)
