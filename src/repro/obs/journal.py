"""Crash-safe observability: the append-only event journal.

Everything else in :mod:`repro.obs` is process-resident — a SIGKILLed
daemon takes its spans, request table, and metrics with it.  The
journal is the durable layer underneath: a segmented, append-only,
CRC-framed write-ahead log that the serve dispatcher and the batch
runner write *as events happen*, so a restart (or a postmortem on a
dead machine) can reconstruct what the process knew.

Format
------

A journal is a directory of segment files, ``journal-000001.jsonl``,
``journal-000002.jsonl``, ...  Each segment is itself a well-formed
JSONL artifact: the first line is a header

    {"kind": "obs-journal", "version": 1, "segment": 1, "created": ...}

(so :func:`repro.obs.sniff_jsonl_kind` identifies segments like every
other artifact in the repo), and every subsequent line is one framed
record::

    {"seq": 17, "ts": 1754640000.123, "type": "request",
     "data": {...}, "crc": "9a0b1c2d"}

``crc`` is the CRC-32 (:func:`zlib.crc32`, hex) of the canonical JSON
encoding (sorted keys, compact separators) of the record *without* the
``crc`` key.  A torn write — the tail of the segment that was in
flight when the process died — fails either JSON parsing or the CRC
check; readers skip and count such lines rather than aborting, which
is the whole crash-safety contract: everything before the tear is
intact, the tear itself is detected, nothing after it existed.

Record vocabulary (the ``type`` field):

``meta``
    writer lifecycle — journal opened, recovery performed, shutdown.
``event``
    one :class:`repro.obs.LogEvent` dict (the wire/log shape).
``request``
    one serve request lifecycle phase: ``data`` carries
    ``request_id``, ``phase`` (``admitted``/``started``/``shard``/
    ``finished``/``failed``/``cancelled``/``interrupted``) and the
    request's status ``row`` at that moment.
``job``
    one corpus verdict — the canonical job object of
    :func:`repro.corpus.report.job_object`, plus ``request_id`` when
    journaled by the daemon.
``snapshot``
    a full :class:`repro.obs.Snapshot` dict (spans, events, counters,
    gauges, histograms, meters) — per request on the daemon, per run
    for ``batch --journal``.  This is what makes replay exact: the
    snapshot carries span open/close and metric state through the
    same merge machinery live reporting uses.
``run``
    batch-run lifecycle (``begin``/``finish`` with the summary).

Fsync policy
------------

``fsync="always"`` fsyncs after every record (maximum durability, one
syscall per event); ``"interval"`` (the default) flushes every record
to the OS but fsyncs only when ``fsync_interval`` seconds have passed
or ``fsync_batch`` records are pending — a crash can lose at most that
window; ``"never"`` leaves durability to the OS page cache (rotation
and close still fsync).  :meth:`Journal.lag` reports the records not
yet fsynced — surfaced in ``repro top`` as journal lag.

Replay
------

:func:`replay_journal` folds a journal back into the live-process
shapes: the request table (requests whose last phase is non-terminal
are marked ``interrupted`` — they were in flight at the crash), the
job list, and one merged :class:`~repro.obs.Snapshot`.  From there the
existing exporters do the rest: :meth:`JournalReplay.chrome_trace`,
:meth:`JournalReplay.openmetrics` and :meth:`JournalReplay.html_report`
reconstruct a dead process's trace, metrics exposition, and HTML
report with zero live state — the ``python -m repro journal replay``
command is a thin wrapper over them.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .log import DEBUG
from .recorder import Recorder
from .snapshot import Snapshot

JOURNAL_KIND = "obs-journal"
JOURNAL_VERSION = 1
SEGMENT_PREFIX = "journal-"
SEGMENT_SUFFIX = ".jsonl"

#: request phases after which a journaled request is settled; anything
#: else at end-of-journal means the process died with it in flight.
TERMINAL_PHASES = ("finished", "failed", "cancelled", "interrupted")

FSYNC_POLICIES = ("always", "interval", "never")


def _canonical(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def record_crc(payload: Dict[str, Any]) -> str:
    """The hex CRC-32 frame of a record (computed over the canonical
    JSON of everything but the ``crc`` key itself)."""
    body = {k: v for k, v in payload.items() if k != "crc"}
    return "%08x" % (zlib.crc32(_canonical(body).encode("utf-8")) & 0xFFFFFFFF)


@dataclass
class JournalRecord:
    """One framed line, already CRC-verified."""

    seq: int
    ts: float
    type: str
    data: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "ts": self.ts, "type": self.type,
                "data": self.data}


@dataclass
class SegmentInfo:
    """What ``journal ls`` prints for one segment file."""

    path: str
    segment: int
    records: int
    corrupt: int
    size: int
    first_seq: Optional[int] = None
    last_seq: Optional[int] = None
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None


def segment_name(number: int) -> str:
    return "%s%06d%s" % (SEGMENT_PREFIX, number, SEGMENT_SUFFIX)


def segment_number(name: str) -> Optional[int]:
    base = os.path.basename(name)
    if not (base.startswith(SEGMENT_PREFIX) and base.endswith(SEGMENT_SUFFIX)):
        return None
    digits = base[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    if not digits.isdigit():
        return None
    return int(digits)


def journal_segments(directory: str) -> List[str]:
    """Segment paths under ``directory``, oldest first."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    numbered = []
    for name in names:
        number = segment_number(name)
        if number is not None:
            numbered.append((number, os.path.join(directory, name)))
    return [path for _, path in sorted(numbered)]


def _parse_record(line: str) -> Optional[JournalRecord]:
    """One framed line back into a record; ``None`` if torn/corrupt."""
    try:
        payload = json.loads(line)
    except ValueError:
        return None
    if not isinstance(payload, dict):
        return None
    crc = payload.get("crc")
    if not isinstance(crc, str) or record_crc(payload) != crc:
        return None
    seq = payload.get("seq")
    ts = payload.get("ts")
    rtype = payload.get("type")
    data = payload.get("data")
    if not isinstance(seq, int) or not isinstance(rtype, str):
        return None
    if not isinstance(data, dict):
        return None
    return JournalRecord(seq=seq, ts=float(ts or 0.0), type=rtype, data=data)


def read_segment(path: str) -> Tuple[Dict[str, Any], List[JournalRecord], int]:
    """``(header, records, corrupt_count)`` for one segment file.

    Torn or corrupt lines (crash tail, disk damage) are skipped and
    counted, never raised — a journal with a torn tail is the normal
    postmortem case, not an error.
    """
    header: Dict[str, Any] = {}
    records: List[JournalRecord] = []
    corrupt = 0
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for index, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            if index == 0:
                try:
                    candidate = json.loads(line)
                except ValueError:
                    candidate = None
                if isinstance(candidate, dict) and candidate.get("kind") == JOURNAL_KIND:
                    header = candidate
                    continue
                # fall through: a headerless file is still readable
            record = _parse_record(line)
            if record is None:
                corrupt += 1
            else:
                records.append(record)
    return header, records, corrupt


@dataclass
class JournalScan:
    """Everything read from a journal directory (or one segment)."""

    directory: str
    segments: List[SegmentInfo] = field(default_factory=list)
    records: List[JournalRecord] = field(default_factory=list)
    corrupt: int = 0


def scan_journal(path: str) -> JournalScan:
    """Read a journal directory — or a single segment file — fully.

    Records come back in ``seq`` order across segments; corrupt lines
    are counted in :attr:`JournalScan.corrupt`.  Raises ``ValueError``
    when ``path`` names neither a journal directory nor a segment.
    """
    if os.path.isdir(path):
        directory = path
        paths = journal_segments(path)
        if not paths:
            raise ValueError("no journal segments (%s*%s) under %s"
                             % (SEGMENT_PREFIX, SEGMENT_SUFFIX, path))
    elif os.path.exists(path):
        directory = os.path.dirname(os.path.abspath(path))
        paths = [path]
    else:
        raise ValueError("journal path does not exist: %s" % path)
    scan = JournalScan(directory=directory)
    for segment_path in paths:
        header, records, corrupt = read_segment(segment_path)
        info = SegmentInfo(
            path=segment_path,
            segment=int(header.get("segment") or segment_number(segment_path) or 0),
            records=len(records),
            corrupt=corrupt,
            size=os.path.getsize(segment_path),
        )
        if records:
            info.first_seq = records[0].seq
            info.last_seq = records[-1].seq
            info.first_ts = records[0].ts
            info.last_ts = records[-1].ts
        scan.segments.append(info)
        scan.records.extend(records)
        scan.corrupt += corrupt
    scan.records.sort(key=lambda record: record.seq)
    return scan


def read_journal(path: str) -> List[JournalRecord]:
    """Just the records of :func:`scan_journal`."""
    return scan_journal(path).records


class Journal:
    """The append side: segmented, CRC-framed, thread-safe.

    Opening a journal always starts a *new* segment (numbered after
    the highest existing one) rather than appending to the old tail —
    a possibly-torn final line from a previous crash then stays
    isolated in its own segment and the new segment is clean from byte
    zero.  ``seq`` continues from the last valid record on disk, so
    record ordering is total across process restarts.
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync: str = "interval",
        fsync_interval: float = 0.5,
        fsync_batch: int = 64,
        segment_bytes: int = 8 * 1024 * 1024,
        retain_segments: int = 16,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError("fsync policy must be one of %s, not %r"
                             % ("/".join(FSYNC_POLICIES), fsync))
        if segment_bytes <= 0 or retain_segments <= 0:
            raise ValueError("segment_bytes and retain_segments must be positive")
        self.directory = directory
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self.fsync_batch = fsync_batch
        self.segment_bytes = segment_bytes
        self.retain_segments = retain_segments
        self._lock = threading.Lock()
        self._handle: Optional[Any] = None
        self._segment = 0
        self._segment_size = 0
        self._unsynced = 0
        self._last_sync = time.monotonic()
        self._appended = 0
        os.makedirs(directory, exist_ok=True)
        self._seq = self._resume_seq()
        self._open_segment(self._next_segment_number())

    # -- internals -------------------------------------------------

    def _resume_seq(self) -> int:
        """First free ``seq`` — one past the newest valid record."""
        for path in reversed(journal_segments(self.directory)):
            _, records, _ = read_segment(path)
            if records:
                return max(record.seq for record in records) + 1
        return 1

    def _next_segment_number(self) -> int:
        numbers = [segment_number(p) or 0 for p in journal_segments(self.directory)]
        return max(numbers, default=0) + 1

    def _open_segment(self, number: int) -> None:
        path = os.path.join(self.directory, segment_name(number))
        handle = open(path, "a", encoding="utf-8")
        header = {"kind": JOURNAL_KIND, "version": JOURNAL_VERSION,
                  "segment": number, "created": time.time(), "pid": os.getpid()}
        line = json.dumps(header, sort_keys=True)
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        self._handle = handle
        self._segment = number
        self._segment_size = len(line) + 1
        self._last_sync = time.monotonic()

    def _sync_locked(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._unsynced = 0
        self._last_sync = time.monotonic()

    def _maybe_sync_locked(self) -> None:
        if self.fsync == "always":
            self._sync_locked()
        elif self.fsync == "interval":
            due = (self._unsynced >= self.fsync_batch
                   or time.monotonic() - self._last_sync >= self.fsync_interval)
            if due:
                self._sync_locked()

    def _rotate_locked(self) -> None:
        self._sync_locked()
        assert self._handle is not None
        self._handle.close()
        self._open_segment(self._segment + 1)
        self._prune_locked()

    def _prune_locked(self) -> None:
        paths = journal_segments(self.directory)
        while len(paths) > self.retain_segments:
            victim = paths.pop(0)
            try:
                os.unlink(victim)
            except OSError:
                break

    # -- public API ------------------------------------------------

    def append(self, type: str, data: Dict[str, Any]) -> int:
        """Frame and write one record; returns its ``seq``.

        Thread-safe; the dispatcher's worker threads and the asyncio
        loop share one journal.  Raises ``ValueError`` after
        :meth:`close`.
        """
        with self._lock:
            if self._handle is None:
                raise ValueError("journal is closed")
            seq = self._seq
            self._seq += 1
            payload = {"seq": seq, "ts": time.time(), "type": type, "data": data}
            payload["crc"] = record_crc(payload)
            line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            self._handle.write(line + "\n")
            if self.fsync != "never":
                self._handle.flush()
            self._segment_size += len(line) + 1
            self._unsynced += 1
            self._appended += 1
            self._maybe_sync_locked()
            if self._segment_size >= self.segment_bytes:
                self._rotate_locked()
            return seq

    def append_event(self, event: Dict[str, Any]) -> int:
        return self.append("event", event)

    def append_snapshot(self, snapshot: Snapshot, **extra: Any) -> int:
        data: Dict[str, Any] = dict(extra)
        data["snapshot"] = snapshot.to_dict()
        return self.append("snapshot", data)

    def sync(self) -> None:
        """Force an fsync regardless of policy (drops :meth:`lag` to 0)."""
        with self._lock:
            if self._handle is not None:
                self._sync_locked()

    def lag(self) -> int:
        """Records appended but not yet fsynced."""
        with self._lock:
            return self._unsynced

    def health(self) -> Dict[str, Any]:
        """The status-document shape: what ``repro top`` renders."""
        with self._lock:
            return {
                "directory": self.directory,
                "segment": segment_name(self._segment),
                "segment_bytes": self._segment_size,
                "segments": len(journal_segments(self.directory)),
                "lag": self._unsynced,
                "records": self._appended,
                "fsync": self.fsync,
            }

    def close(self) -> None:
        with self._lock:
            if self._handle is None:
                return
            self._sync_locked()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# -- replay --------------------------------------------------------


@dataclass
class JournalReplay:
    """A journal folded back into live-process shapes."""

    directory: str
    records: int = 0
    corrupt: int = 0
    segments: List[SegmentInfo] = field(default_factory=list)
    #: request_id -> {"state", "phases", "row", "payload"}
    requests: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: canonical job objects, journal order
    jobs: List[Dict[str, Any]] = field(default_factory=list)
    #: request_id -> job objects (daemon journals carry request ids)
    jobs_by_request: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    #: request_id -> raw Snapshot dict (last wins; "" for run-level)
    snapshot_dicts: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: batch-run lifecycle records
    runs: List[Dict[str, Any]] = field(default_factory=list)
    #: last seen run/request summary (for the HTML corpus section)
    summary: Dict[str, Any] = field(default_factory=dict)
    snapshot: Snapshot = field(default_factory=Snapshot)

    def interrupted(self) -> List[str]:
        return sorted(rid for rid, info in self.requests.items()
                      if info["state"] == "interrupted")

    def to_recorder(self) -> Recorder:
        """Graft the merged snapshot into a fresh DEBUG-level recorder
        — the exact trick live ``snapshot_report`` uses, so every
        exporter downstream behaves as if the process were alive."""
        recorder = Recorder(log_level=DEBUG)
        self.snapshot.merge_into(recorder)
        return recorder

    def chrome_trace(self) -> Dict[str, Any]:
        from .export import to_chrome_trace

        return to_chrome_trace(self.to_recorder())

    def openmetrics(self) -> str:
        from .metrics import render_openmetrics

        recorder = self.to_recorder()
        return render_openmetrics(recorder.counters, recorder.gauges,
                                  recorder.histograms, recorder.meters)

    def corpus_doc(self) -> Optional[Dict[str, Any]]:
        if not self.jobs:
            return None
        return {"jobs": list(self.jobs), "summary": dict(self.summary)}

    def html_report(self, *, title: str = "journal replay",
                    generated: str = "") -> str:
        from .html import snapshot_report

        return snapshot_report(self.snapshot, corpus=self.corpus_doc(),
                               title=title, generated=generated)


def replay_journal(path: str) -> JournalReplay:
    """Fold a journal (directory or single segment) into a
    :class:`JournalReplay`.

    Requests whose final journaled phase is not terminal were in
    flight when the writer died; they come back with state
    ``"interrupted"``.  Snapshot records merge through
    :meth:`Snapshot.merge_all`; loose ``event`` records (journaled
    before any snapshot flush) merge in as span-less log events.
    """
    scan = scan_journal(path)
    replay = JournalReplay(directory=scan.directory, records=len(scan.records),
                           corrupt=scan.corrupt, segments=scan.segments)
    loose_events: List[Dict[str, Any]] = []
    for record in scan.records:
        data = record.data
        if record.type == "request":
            rid = str(data.get("request_id") or "")
            if not rid:
                continue
            info = replay.requests.setdefault(
                rid, {"state": "interrupted", "phases": [], "row": {},
                      "payload": None, "summary": None})
            phase = str(data.get("phase") or "")
            info["phases"].append(phase)
            if isinstance(data.get("row"), dict):
                info["row"] = data["row"]
            if isinstance(data.get("payload"), dict):
                info["payload"] = data["payload"]
            if isinstance(data.get("summary"), dict):
                info["summary"] = data["summary"]
                replay.summary = data["summary"]
        elif record.type == "job":
            job = data.get("job")
            if isinstance(job, dict):
                replay.jobs.append(job)
                rid = str(data.get("request_id") or "")
                if rid:
                    replay.jobs_by_request.setdefault(rid, []).append(job)
        elif record.type == "snapshot":
            payload = data.get("snapshot")
            if isinstance(payload, dict):
                rid = str(data.get("request_id") or "")
                replay.snapshot_dicts[rid] = payload
        elif record.type == "event":
            loose_events.append(dict(data))
        elif record.type == "run":
            replay.runs.append(dict(data))
            if isinstance(data.get("summary"), dict):
                replay.summary = data["summary"]
    for info in replay.requests.values():
        phases = info["phases"]
        last = phases[-1] if phases else ""
        if last in TERMINAL_PHASES:
            row_state = info["row"].get("state") if info["row"] else None
            info["state"] = str(row_state or last)
        else:
            info["state"] = "interrupted"
    snapshots = []
    for rid in sorted(replay.snapshot_dicts):
        try:
            snapshots.append(Snapshot.from_dict(replay.snapshot_dicts[rid]))
        except (TypeError, ValueError, KeyError):
            replay.corrupt += 1
    merged = Snapshot.merge_all(snapshots) if snapshots else Snapshot()
    if loose_events:
        merged = merged.merge(Snapshot(events=loose_events))
    replay.snapshot = merged
    return replay


def tail_records(path: str, *, after_seq: int = 0,
                 limit: Optional[int] = None) -> Iterator[JournalRecord]:
    """Records with ``seq > after_seq``, oldest first (the ``journal
    tail`` / ``tail -f`` primitive — re-invoke with the last seen seq
    to poll for new records)."""
    records = [r for r in scan_journal(path).records if r.seq > after_seq]
    if limit is not None and limit >= 0:
        records = records[-limit:]
    return iter(records)
