"""Portable, mergeable snapshots of a recorder's observations.

A :class:`Snapshot` is the process-boundary form of a
:class:`~repro.obs.recorder.Recorder`: counters, gauges, total wall
time — and, since the unified observability layer, the buffered
structured log events and the span forest, all as plain JSON types —
so it pickles/JSON-serializes cheaply and merges associatively.  The
corpus engine (:mod:`repro.corpus`) records each job under its own
recorder inside a worker process, snapshots it, ships the dict across
the ``ProcessPoolExecutor`` boundary, and merges all job snapshots
into the parent's recorder so one ``--stats`` view aggregates the
whole batch and one ``--log`` file carries the workers' events.

Merging follows the registry semantics: counters add, gauges keep the
maximum (a gauge is a high-water mark across jobs), wall times add.
Events concatenate *in order* (self's first, then the other's — never
reordered, never duplicated); span forests concatenate.  Because span
ids are recorder-scoped, every merge re-ids the incoming spans into
the receiving side's id space and rewrites the incoming events'
``span_id``/``parent_span_id`` with the same mapping, so a worker
event keeps pointing at the worker span that emitted it after the
graft — which is what lets a ``--log`` line from inside a worker
resolve against the parent's ``--trace`` file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .metrics import (
    Histogram,
    Meter,
    SampleSeries,
    histograms_from_jsonable,
    merge_registry,
    meters_from_jsonable,
    registry_to_jsonable,
    samples_from_jsonable,
)
from .recorder import LabelKey, Recorder

__all__ = [
    "Snapshot",
    "labeled_to_jsonable",
    "labeled_from_jsonable",
    "merge_labeled",
]


def labeled_to_jsonable(
    labeled: Mapping[str, Mapping[LabelKey, float]]
) -> Dict[str, List[Dict[str, Any]]]:
    """The JSON form of a labeled-counter registry: per counter name, a
    list of ``{"labels": {...}, "value": v}`` rows sorted by label key —
    byte-stable regardless of insertion order."""
    out: Dict[str, List[Dict[str, Any]]] = {}
    for name in sorted(labeled):
        out[name] = [
            {"labels": dict(key), "value": labeled[name][key]}
            for key in sorted(labeled[name])
        ]
    return out


def labeled_from_jsonable(
    payload: Mapping[str, Any]
) -> Dict[str, Dict[LabelKey, float]]:
    """Rebuild the registry form from :func:`labeled_to_jsonable`."""
    out: Dict[str, Dict[LabelKey, float]] = {}
    for name, rows in payload.items():
        by_key: Dict[LabelKey, float] = {}
        for row in rows:
            key: LabelKey = tuple(
                sorted((str(k), str(v)) for k, v in row.get("labels", {}).items())
            )
            by_key[key] = by_key.get(key, 0) + float(row.get("value", 0))
        out[str(name)] = by_key
    return out


def merge_labeled(
    into: Dict[str, Dict[LabelKey, float]],
    other: Mapping[str, Mapping[LabelKey, float]],
) -> None:
    """Fold ``other`` into ``into`` in place (values add, like counters)."""
    for name, by_key in other.items():
        target = into.setdefault(name, {})
        for key, value in by_key.items():
            target[key] = target.get(key, 0) + value


def _copy_registry(registry: Mapping[str, Any]) -> Dict[str, Any]:
    """A deep copy of a metrics registry (via the JSON round-trip, so
    the copy never aliases the live recorder's mutable state)."""
    return {
        name: type(value).from_jsonable(value.to_jsonable())
        for name, value in registry.items()
    }


def _collect_ids(spans: List[Dict[str, Any]]) -> List[int]:
    ids: List[int] = []
    stack = list(spans)
    while stack:
        node = stack.pop()
        if node.get("id") is not None:
            ids.append(node["id"])
        stack.extend(node.get("children", ()))
    return ids


def _remap_spans(
    spans: List[Dict[str, Any]], id_map: Dict[int, int]
) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for node in spans:
        copied = dict(node)
        if copied.get("id") is not None:
            copied["id"] = id_map.get(copied["id"], copied["id"])
        if copied.get("parent") is not None:
            copied["parent"] = id_map.get(copied["parent"], copied["parent"])
        copied["children"] = _remap_spans(list(node.get("children", ())), id_map)
        out.append(copied)
    return out


def _remap_events(
    events: List[Dict[str, Any]], id_map: Dict[int, int]
) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for event in events:
        copied = dict(event)
        for key in ("span_id", "parent_span_id"):
            if copied.get(key) is not None:
                copied[key] = id_map.get(copied[key], copied[key])
        out.append(copied)
    return out


@dataclass
class Snapshot:
    """Counters + gauges + wall time + events + spans of one recorded
    run, as plain JSON types.  Round-trips through :meth:`to_dict` /
    :meth:`from_dict`."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    wall_time_ns: int = 0
    events: List[Dict[str, Any]] = field(default_factory=list)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    labeled: Dict[str, Dict[LabelKey, float]] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    meters: Dict[str, Meter] = field(default_factory=dict)
    samples: Dict[str, SampleSeries] = field(default_factory=dict)

    @classmethod
    def from_recorder(cls, recorder: Recorder) -> "Snapshot":
        """Capture the recorder's registries, events, spans, and total
        root-span time."""
        from .export import span_to_dict
        from .log import events_to_dicts

        return cls(
            counters=dict(recorder.counters),
            gauges=dict(recorder.gauges),
            wall_time_ns=recorder.total_duration_ns(),
            events=events_to_dicts(recorder),
            spans=[span_to_dict(root) for root in recorder.spans],
            labeled={name: dict(by_key) for name, by_key in recorder.labeled.items()},
            histograms=_copy_registry(recorder.histograms),
            meters=_copy_registry(recorder.meters),
            samples=_copy_registry(recorder.samples),
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready document (``from_dict`` round-trips it).
        Version 4 adds the metrics registries (``histograms``,
        ``meters``, ``samples``); version 3 added ``labeled``."""
        out: Dict[str, Any] = {
            "version": 4,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "wall_time_ns": int(self.wall_time_ns),
        }
        if self.labeled:
            out["labeled"] = labeled_to_jsonable(self.labeled)
        if self.histograms:
            out["histograms"] = registry_to_jsonable(self.histograms)
        if self.meters:
            out["meters"] = registry_to_jsonable(self.meters)
        if self.samples:
            out["samples"] = registry_to_jsonable(self.samples)
        if self.events:
            out["events"] = [dict(event) for event in self.events]
        if self.spans:
            out["spans"] = [dict(span) for span in self.spans]
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Snapshot":
        """Rebuild a snapshot from :meth:`to_dict` output (version 1–3
        payloads — no metrics registries, no labeled registry, or no
        events/spans — load fine)."""
        return cls(
            counters={str(k): float(v) for k, v in dict(payload.get("counters", {})).items()},
            gauges={str(k): float(v) for k, v in dict(payload.get("gauges", {})).items()},
            wall_time_ns=int(payload.get("wall_time_ns", 0)),
            events=[dict(event) for event in payload.get("events", ())],
            spans=[dict(span) for span in payload.get("spans", ())],
            labeled=labeled_from_jsonable(payload.get("labeled", {})),
            histograms=histograms_from_jsonable(payload.get("histograms", {})),
            meters=meters_from_jsonable(payload.get("meters", {})),
            samples=samples_from_jsonable(payload.get("samples", {})),
        )

    @classmethod
    def merge_all(cls, snapshots: List["Snapshot"]) -> "Snapshot":
        """Fold many snapshots into one (left to right; the merge is
        associative, so shard captures combined in any grouping give
        the same counters).  An empty list merges to the empty
        snapshot."""
        merged = cls()
        for snapshot in snapshots:
            merged = merged.merge(snapshot)
        return merged

    def without_replayable_state(self) -> "Snapshot":
        """A copy carrying only the registries — what a result cache
        should store, so a cache hit never replays stale log events or
        span trees as if the work had happened again.  The labeled,
        histogram, and meter registries merge like counters, so they
        stay; the sampled time series is replayable state (wall-clock
        stamped), so it is dropped along with events and spans."""
        return Snapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            wall_time_ns=self.wall_time_ns,
            labeled={name: dict(by_key) for name, by_key in self.labeled.items()},
            histograms=_copy_registry(self.histograms),
            meters=_copy_registry(self.meters),
        )

    def _id_map_for(self, taken: List[int]) -> Tuple[Dict[int, int], int]:
        """A collision-free remapping of this snapshot's span ids into
        a space where ``taken`` ids are already in use."""
        base = max(taken) + 1 if taken else 0
        mapping: Dict[int, int] = {}
        for old in sorted(set(_collect_ids(self.spans))):
            mapping[old] = base
            base += 1
        return mapping, base

    def merge(self, other: "Snapshot") -> "Snapshot":
        """A new snapshot combining both: counters add, gauges max,
        wall times add, events/spans concatenate in order (the other
        side's span ids are re-numbered past this side's so the merged
        document stays collision-free)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            if name not in gauges or gauges[name] < value:
                gauges[name] = value
        labeled = {name: dict(by_key) for name, by_key in self.labeled.items()}
        merge_labeled(labeled, other.labeled)
        histograms = _copy_registry(self.histograms)
        merge_registry(histograms, other.histograms)
        meters = _copy_registry(self.meters)
        merge_registry(meters, other.meters)
        samples = _copy_registry(self.samples)
        merge_registry(samples, other.samples)
        id_map, _ = other._id_map_for(_collect_ids(self.spans))
        return Snapshot(
            counters=counters,
            gauges=gauges,
            wall_time_ns=self.wall_time_ns + other.wall_time_ns,
            events=[dict(event) for event in self.events]
            + _remap_events(other.events, id_map),
            spans=[dict(span) for span in self.spans]
            + _remap_spans(other.spans, id_map),
            labeled=labeled,
            histograms=histograms,
            meters=meters,
            samples=samples,
        )

    def merge_into(self, recorder: Recorder, prefix: str = "") -> None:
        """Fold this snapshot into a live recorder: counters add,
        gauges keep the maximum (optionally namespaced by ``prefix``);
        spans graft under the recorder's currently-open span (or as new
        roots) with fresh recorder-scoped ids; events append to the
        recorder's log buffer — when the recorder is logging at all —
        with their span references rewritten by the same id mapping."""
        from .export import span_from_dict
        from .log import LogEvent

        for name, value in self.counters.items():
            recorder.add(prefix + name, value)
        for name, value in self.gauges.items():
            recorder.gauge_max(prefix + name, value)
        # The flat counters above already include every labeled
        # contribution, so the labeled registry merges through the raw
        # path that leaves the flat table alone.
        for name, by_key in self.labeled.items():
            for key, value in by_key.items():
                recorder.add_labeled_raw(prefix + name, key, value)
        # The metrics registries merge by their own semantics: histogram
        # buckets add, meter windows keep the longest, sampled series
        # interleave by timestamp.  Prefixes namespace them like the
        # flat registries.
        if prefix:
            merge_registry(
                recorder.histograms,
                {prefix + name: h for name, h in self.histograms.items()},
            )
            merge_registry(
                recorder.meters,
                {prefix + name: m for name, m in self.meters.items()},
            )
            merge_registry(
                recorder.samples,
                {prefix + name: s for name, s in self.samples.items()},
            )
        else:
            merge_registry(recorder.histograms, self.histograms)
            merge_registry(recorder.meters, self.meters)
            merge_registry(recorder.samples, self.samples)
        if not self.events and not self.spans:
            return
        id_map: Dict[int, int] = {
            old: recorder.claim_span_id()
            for old in sorted(set(_collect_ids(self.spans)))
        }
        anchor = recorder.active_span()
        anchor_id: Optional[int] = anchor.span_id if anchor is not None else None
        for payload in _remap_spans(self.spans, id_map):
            root = span_from_dict(payload)
            root.parent_id = anchor_id
            if anchor is not None:
                anchor.children.append(root)
            else:
                recorder.spans.append(root)
        if recorder.log_level is None:
            return
        for payload in _remap_events(self.events, id_map):
            event = LogEvent.from_dict(payload)
            if event.span_id is None and anchor_id is not None:
                # An event emitted outside any worker span still lands
                # somewhere resolvable: the span the graft hangs under.
                event.span_id = anchor_id
                event.parent_span_id = (
                    anchor.parent_id if anchor is not None else None
                )
            recorder.events.append(event)
