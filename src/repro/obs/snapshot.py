"""Portable, mergeable snapshots of a recorder's registries.

A :class:`Snapshot` is the process-boundary form of a
:class:`~repro.obs.recorder.Recorder`: just the counters, gauges, and
total wall time — no span objects — so it pickles/JSON-serializes
cheaply and merges associatively.  The corpus engine
(:mod:`repro.corpus`) records each job under its own recorder inside a
worker process, snapshots it, ships the dict across the
``ProcessPoolExecutor`` boundary, and merges all job snapshots into the
parent's recorder so one ``--stats`` view aggregates the whole batch.

Merging follows the registry semantics: counters add, gauges keep the
maximum (a gauge is a high-water mark across jobs), wall times add.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

from .recorder import Recorder

__all__ = ["Snapshot"]


@dataclass
class Snapshot:
    """Counters + gauges + wall time of one recorded run, detached from
    the span tree.  Round-trips through :meth:`to_dict` /
    :meth:`from_dict` (plain JSON types only)."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    wall_time_ns: int = 0

    @classmethod
    def from_recorder(cls, recorder: Recorder) -> "Snapshot":
        """Capture the recorder's registries and total root-span time."""
        return cls(
            counters=dict(recorder.counters),
            gauges=dict(recorder.gauges),
            wall_time_ns=recorder.total_duration_ns(),
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready document (``from_dict`` round-trips it)."""
        return {
            "version": 1,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "wall_time_ns": int(self.wall_time_ns),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Snapshot":
        """Rebuild a snapshot from :meth:`to_dict` output."""
        return cls(
            counters={str(k): float(v) for k, v in dict(payload.get("counters", {})).items()},
            gauges={str(k): float(v) for k, v in dict(payload.get("gauges", {})).items()},
            wall_time_ns=int(payload.get("wall_time_ns", 0)),
        )

    def merge(self, other: "Snapshot") -> "Snapshot":
        """A new snapshot combining both: counters add, gauges max,
        wall times add."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            if name not in gauges or gauges[name] < value:
                gauges[name] = value
        return Snapshot(
            counters=counters,
            gauges=gauges,
            wall_time_ns=self.wall_time_ns + other.wall_time_ns,
        )

    def merge_into(self, recorder: Recorder, prefix: str = "") -> None:
        """Fold this snapshot into a live recorder (counters add,
        gauges keep the maximum), optionally namespaced by ``prefix``."""
        for name, value in self.counters.items():
            recorder.add(prefix + name, value)
        for name, value in self.gauges.items():
            recorder.gauge_max(prefix + name, value)
