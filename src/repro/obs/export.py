"""Exporters for recorded runs: text tree, JSON, Chrome trace_event.

Three views of one :class:`~repro.obs.recorder.Recorder`:

* :func:`render_text` — an indented span tree with per-phase wall time,
  percentage of the enclosing span, and attributes, followed by the
  counter/gauge tables.  This is what ``python -m repro profile``
  prints.
* :func:`to_dict` / :func:`render_json` — a faithful JSON document
  (``from_dict`` round-trips it), for archiving alongside benchmark
  numbers.
* :func:`to_chrome_trace` — the Chrome ``trace_event`` JSON object
  format (complete ``"X"`` events plus one metadata event), loadable in
  ``chrome://tracing`` and Perfetto.  Span ids/parents ride in ``args``
  so :func:`spans_from_chrome_trace` can rebuild the tree.

Span ids are the *recorder's own* (:attr:`repro.obs.recorder.Span.span_id`)
whenever present — the same ids structured log events reference — so a
``--log`` JSONL line joins against a ``--trace`` file by ``span_id``.
Buffered log events export as Chrome instant (``"i"``) events on the
span timeline.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .recorder import Recorder, Span

__all__ = [
    "render_text",
    "to_dict",
    "from_dict",
    "render_json",
    "span_to_dict",
    "span_from_dict",
    "to_chrome_trace",
    "write_chrome_trace",
    "spans_from_chrome_trace",
]


def _format_duration(ns: int) -> str:
    if ns >= 1_000_000_000:
        return "%.3f s" % (ns / 1e9)
    if ns >= 1_000_000:
        return "%.2f ms" % (ns / 1e6)
    return "%.1f us" % (ns / 1e3)


def _format_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    inner = ", ".join("%s=%s" % (k, attrs[k]) for k in sorted(attrs))
    return "  {%s}" % inner


def _render_span(span: Span, parent_ns: Optional[int], indent: int, lines: List[str]) -> None:
    share = ""
    if parent_ns:
        share = " (%4.1f%%)" % (100.0 * span.duration_ns / parent_ns)
    lines.append(
        "%s%s  %s%s%s"
        % ("  " * indent, span.name, _format_duration(span.duration_ns), share,
           _format_attrs(span.attrs))
    )
    for child in span.children:
        _render_span(child, span.duration_ns, indent + 1, lines)


def render_text(recorder: Recorder) -> str:
    """The human-readable report: span tree, counters, gauges."""
    lines: List[str] = []
    for root in recorder.spans:
        _render_span(root, None, 0, lines)
    if recorder.counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(name) for name in recorder.counters)
        for name in sorted(recorder.counters):
            value = recorder.counters[name]
            shown = "%d" % value if float(value).is_integer() else "%g" % value
            lines.append("  %-*s  %s" % (width, name, shown))
    if recorder.gauges:
        lines.append("")
        lines.append("gauges:")
        width = max(len(name) for name in recorder.gauges)
        for name in sorted(recorder.gauges):
            lines.append("  %-*s  %g" % (width, name, recorder.gauges[name]))
    if recorder.histograms:
        lines.append("")
        lines.append("histograms:")
        width = max(len(name) for name in recorder.histograms)
        for name in sorted(recorder.histograms):
            stats = recorder.histograms[name].summary()
            lines.append(
                "  %-*s  n=%d p50=%g p90=%g p99=%g max=%g"
                % (width, name, int(stats["count"]), stats["p50"],
                   stats["p90"], stats["p99"], stats["max"])
            )
    if recorder.meters:
        lines.append("")
        lines.append("meters:")
        width = max(len(name) for name in recorder.meters)
        for name in sorted(recorder.meters):
            meter = recorder.meters[name]
            lines.append(
                "  %-*s  n=%g rate=%.3f/s" % (width, name, meter.count, meter.rate())
            )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# JSON (round-trippable)
# ---------------------------------------------------------------------------


def span_to_dict(span: Span) -> Dict[str, Any]:
    """One span subtree as plain JSON types (ids included)."""
    return {
        "name": span.name,
        "id": span.span_id,
        "parent": span.parent_id,
        "start_ns": span.start_ns,
        "duration_ns": span.duration_ns,
        "attrs": dict(span.attrs),
        "children": [span_to_dict(child) for child in span.children],
    }


def span_from_dict(payload: Dict[str, Any]) -> Span:
    """Rebuild a span subtree from :func:`span_to_dict` output."""
    span = Span(payload["name"], start_ns=payload["start_ns"])
    span.end_ns = payload["start_ns"] + payload["duration_ns"]
    span.span_id = payload.get("id")
    span.parent_id = payload.get("parent")
    span.attrs = dict(payload.get("attrs", {}))
    span.children = [span_from_dict(child) for child in payload.get("children", ())]
    return span


def to_dict(recorder: Recorder) -> Dict[str, Any]:
    """A JSON-ready document of the whole run.  Counter/gauge keys are
    sorted so the export is byte-stable regardless of the order the
    instrumented code happened to touch them in."""
    from .log import events_to_dicts
    from .metrics import registry_to_jsonable
    from .snapshot import labeled_to_jsonable

    return {
        "version": 1,
        "spans": [span_to_dict(root) for root in recorder.spans],
        "counters": {name: recorder.counters[name] for name in sorted(recorder.counters)},
        "gauges": {name: recorder.gauges[name] for name in sorted(recorder.gauges)},
        "labeled": labeled_to_jsonable(recorder.labeled),
        "histograms": registry_to_jsonable(recorder.histograms),
        "meters": registry_to_jsonable(recorder.meters),
        "samples": registry_to_jsonable(recorder.samples),
        "events": events_to_dicts(recorder),
    }


def from_dict(payload: Dict[str, Any]) -> Recorder:
    """Rebuild a recorder from :func:`to_dict` output."""
    from .log import LogEvent
    from .metrics import (
        histograms_from_jsonable,
        meters_from_jsonable,
        samples_from_jsonable,
    )
    from .snapshot import labeled_from_jsonable

    rec = Recorder()
    rec.spans = [span_from_dict(span) for span in payload.get("spans", ())]
    rec.counters = dict(payload.get("counters", {}))
    rec.gauges = dict(payload.get("gauges", {}))
    rec.labeled = labeled_from_jsonable(payload.get("labeled", {}))
    rec.histograms = histograms_from_jsonable(payload.get("histograms", {}))
    rec.meters = meters_from_jsonable(payload.get("meters", {}))
    rec.samples = samples_from_jsonable(payload.get("samples", {}))
    rec.events = [LogEvent.from_dict(event) for event in payload.get("events", ())]
    return rec


def render_json(recorder: Recorder) -> str:
    return json.dumps(to_dict(recorder), indent=2, sort_keys=False)


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------


def to_chrome_trace(recorder: Recorder, process_name: str = "repro") -> Dict[str, Any]:
    """The ``trace_event`` JSON object format.

    Every span becomes a complete (``"ph": "X"``) event with
    microsecond timestamps relative to the earliest span; buffered log
    events become instant (``"i"``) events at their emission point;
    counters become one ``"C"`` event each at the end of the run so
    Perfetto draws them as a final value track.

    Span ``args`` carry ``id``/``parent`` — the recorder's own span
    ids, the same ones ``--log`` JSONL events reference — so
    :func:`spans_from_chrome_trace` can rebuild the tree and a log
    line's ``span_id`` resolves against the trace.  Spans built by
    hand (without a recorder) get fresh ids past the used range.
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": process_name},
        }
    ]
    origin_ns = min((root.start_ns for root in recorder.spans), default=0)

    used: List[int] = []

    def collect(span: Span) -> None:
        if span.span_id is not None:
            used.append(span.span_id)
        for child in span.children:
            collect(child)

    for root in recorder.spans:
        collect(root)
    next_id = [max(used) + 1 if used else 0]

    def emit(span: Span, parent_id: Optional[int]) -> None:
        if span.span_id is not None:
            span_id = span.span_id
        else:
            span_id = next_id[0]
            next_id[0] += 1
        args: Dict[str, Any] = dict(span.attrs)
        args["id"] = span_id
        if parent_id is not None:
            args["parent"] = parent_id
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": (span.start_ns - origin_ns) / 1e3,
                "dur": span.duration_ns / 1e3,
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
        for child in span.children:
            emit(child, span_id)

    for root in recorder.spans:
        emit(root, None)
    end_ts = max(
        (event["ts"] + event["dur"] for event in events if event["ph"] == "X"),
        default=0.0,
    )
    for record in recorder.events:
        payload = record.to_dict()
        perf_ns = getattr(record, "perf_ns", None)
        events.append(
            {
                "name": payload["logger"] or "log",
                "ph": "i",
                "ts": (perf_ns - origin_ns) / 1e3 if perf_ns is not None else end_ts,
                "pid": 1,
                "tid": 1,
                "s": "t",
                "args": payload,
            }
        )
    for name in sorted(recorder.counters):
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": end_ts,
                "pid": 1,
                "tid": 1,
                "args": {"value": recorder.counters[name]},
            }
        )
    if recorder.labeled:
        from .snapshot import labeled_to_jsonable

        # The attribution registry rides as one metadata event, so a
        # ``--trace`` file is a complete ``trace-diff`` input; viewers
        # that don't know the name ignore metadata events.
        events.append(
            {
                "name": "repro_labeled",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "args": {"labeled": labeled_to_jsonable(recorder.labeled)},
            }
        )
    if recorder.histograms:
        # Distribution registry as a second metadata event: buckets
        # travel whole, so the HTML report can draw the histogram bars
        # rather than just quoting the quantiles.
        events.append(
            {
                "name": "repro_histograms",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "args": {
                    "histograms": {
                        name: histogram.to_jsonable()
                        for name, histogram in sorted(
                            recorder.histograms.items()
                        )
                    }
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(recorder: Recorder, path: str, process_name: str = "repro") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        # sort_keys keeps the file byte-stable for golden diffs and CI
        # greps; the trace_event format carries no key-order semantics.
        json.dump(to_chrome_trace(recorder, process_name), handle,
                  indent=2, sort_keys=True)


def spans_from_chrome_trace(payload: Dict[str, Any]) -> List[Span]:
    """Rebuild the span forest from :func:`to_chrome_trace` output
    (the ``id``/``parent`` args carry the tree; counters are ignored)."""
    by_id: Dict[int, Span] = {}
    roots: List[Span] = []
    parents: List[Dict[str, Any]] = []
    for event in payload.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = args.pop("id")
        parent_id = args.pop("parent", None)
        start_ns = int(round(event["ts"] * 1e3))
        span = Span(event["name"], start_ns=start_ns)
        span.end_ns = start_ns + int(round(event["dur"] * 1e3))
        span.span_id = span_id
        span.parent_id = parent_id
        span.attrs = args
        by_id[span_id] = span
        parents.append({"id": span_id, "parent": parent_id})
    for link in parents:
        span = by_id[link["id"]]
        if link["parent"] is None:
            roots.append(span)
        else:
            by_id[link["parent"]].children.append(span)
    return roots
