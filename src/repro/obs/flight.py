"""The flight recorder: last-N events in memory, dumped on crash.

The journal (:mod:`repro.obs.journal`) is the durable record of what
the process *did*; the flight recorder is the cheap in-memory record
of what it was doing *right now* — a bounded ring of breadcrumb
events that costs one deque append per note and is dumped to a
``crash-*.json`` postmortem file when the process dies unexpectedly:

* an uncaught exception (``sys.excepthook`` is chained, not replaced);
* a fatal signal — SIGSEGV/SIGFPE/SIGABRT/SIGBUS/SIGILL — for which
  :mod:`faulthandler` writes every thread's stack into a sidecar
  ``crash-stacks-<pid>.txt`` in the same directory (Python-level
  handlers cannot run after a segfault, so the sidecar is pre-opened).

SIGKILL cannot be caught by anything; that case is exactly what the
journal's torn-tail recovery handles.

The postmortem file is self-describing JSON::

    {"kind": "repro-crash", "version": 1, "ts": ..., "pid": ...,
     "argv": [...], "reason": "uncaught exception",
     "exception": {"type": "...", "message": "...", "traceback": "..."},
     "stack": "<faulthandler dump of all threads>",
     "events": [{"ts": ..., "kind": "...", "fields": {...}}, ...]}

``repro serve --journal-dir`` and ``repro batch --journal`` install a
recorder into the journal directory automatically; :func:`note` is a
no-op when nothing is installed, so call sites never need to guard.
"""

from __future__ import annotations

import collections
import faulthandler
import json
import os
import sys
import tempfile
import threading
import time
import traceback
from typing import Any, Deque, Dict, List, Optional

CRASH_KIND = "repro-crash"
CRASH_VERSION = 1


class FlightRecorder:
    """A bounded ring of breadcrumb events plus the dump machinery."""

    def __init__(self, directory: str, *, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.directory = directory
        self.capacity = capacity
        self._events: Deque[Dict[str, Any]] = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()

    def note(self, kind: str, **fields: Any) -> None:
        """One breadcrumb; O(1), never raises."""
        entry = {"ts": time.time(), "kind": kind, "fields": fields}
        with self._lock:
            self._events.append(entry)

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def dump(self, reason: str, exc: Optional[BaseException] = None) -> str:
        """Write the postmortem file; returns its path.

        Best-effort by design: called from an excepthook, so it must
        not raise — a failed dump returns ``""``.
        """
        payload: Dict[str, Any] = {
            "kind": CRASH_KIND,
            "version": CRASH_VERSION,
            "ts": time.time(),
            "pid": os.getpid(),
            "argv": list(sys.argv),
            "reason": reason,
            "stack": _all_thread_stacks(),
            "events": self.events(),
        }
        if exc is not None:
            payload["exception"] = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": "".join(traceback.format_exception(
                    type(exc), exc, exc.__traceback__)),
            }
        name = "crash-%d-%d.json" % (os.getpid(), int(time.time() * 1000))
        path = os.path.join(self.directory, name)
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, prefix=".crash-")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True, default=str)
                handle.write("\n")
            os.replace(tmp, path)
        except OSError:
            return ""
        return path


def _all_thread_stacks() -> str:
    """Every thread's Python stack via faulthandler (the same trick
    :mod:`repro.corpus.telemetry` uses for hang diagnostics)."""
    try:
        with tempfile.TemporaryFile(mode="w+") as handle:
            faulthandler.dump_traceback(file=handle, all_threads=True)
            handle.seek(0)
            return handle.read()
    except Exception:
        return ""


_RECORDER: Optional[FlightRecorder] = None
_PREV_EXCEPTHOOK: Optional[Any] = None
_FAULT_FILE: Optional[Any] = None


def _excepthook(exc_type: Any, exc: BaseException, tb: Any) -> None:
    recorder = _RECORDER
    if recorder is not None and not issubclass(exc_type, KeyboardInterrupt):
        try:
            recorder.dump("uncaught exception", exc)
        except Exception:
            pass
    prev = _PREV_EXCEPTHOOK or sys.__excepthook__
    prev(exc_type, exc, tb)


def install(directory: str, *, capacity: int = 256) -> FlightRecorder:
    """Install (or return the already-installed) process-wide recorder.

    Chains ``sys.excepthook`` and arms faulthandler's fatal-signal
    dump into ``crash-stacks-<pid>.txt`` under ``directory``.
    Idempotent per process; a second install with a different
    directory re-points the dumps.
    """
    global _RECORDER, _PREV_EXCEPTHOOK, _FAULT_FILE
    if _RECORDER is not None and _RECORDER.directory == directory:
        return _RECORDER
    os.makedirs(directory, exist_ok=True)
    recorder = FlightRecorder(directory, capacity=capacity)
    if _RECORDER is None:
        _PREV_EXCEPTHOOK = sys.excepthook
        sys.excepthook = _excepthook
    _RECORDER = recorder
    try:
        fault_path = os.path.join(directory, "crash-stacks-%d.txt" % os.getpid())
        handle = open(fault_path, "w", encoding="utf-8")
        faulthandler.enable(file=handle, all_threads=True)
        if _FAULT_FILE is not None:
            _FAULT_FILE.close()
        _FAULT_FILE = handle
    except OSError:
        pass
    return recorder


def uninstall() -> None:
    """Undo :func:`install` (tests; live processes never need this)."""
    global _RECORDER, _PREV_EXCEPTHOOK, _FAULT_FILE
    if _RECORDER is None:
        return
    if _PREV_EXCEPTHOOK is not None:
        sys.excepthook = _PREV_EXCEPTHOOK
    _PREV_EXCEPTHOOK = None
    _RECORDER = None
    try:
        faulthandler.disable()
    except Exception:
        pass
    if _FAULT_FILE is not None:
        _FAULT_FILE.close()
        _FAULT_FILE = None


def installed() -> Optional[FlightRecorder]:
    return _RECORDER


def note(kind: str, **fields: Any) -> None:
    """Breadcrumb into the installed recorder; no-op when none is."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.note(kind, **fields)
