"""Self-contained HTML observability report (``python -m repro report``).

One static HTML file — no scripts, no external URLs, no dependencies —
that a CI run can attach as an artifact and a human can open anywhere:

* **span waterfall** from a Chrome ``--trace`` file (the recorder's own
  span ids shown, so ``--log`` lines join against the rows);
* **counter / gauge tables** from the same trace;
* **work attribution** from the trace's labeled-counter registry (the
  ``repro_labeled`` metadata event): per-counter hot-rule tables with
  coverage shares, the HTML twin of ``python -m repro explain``;
* **trace diff** against a second (baseline) trace when
  ``--baseline-trace`` is given — span/counter/attribution deltas,
  worst divergence first, the HTML twin of ``python -m repro
  trace-diff``;
* **structured log excerpt** from a ``--log`` JSONL file, levels
  badged;
* **benchmark sparklines** from the :mod:`repro.obs.bench` history
  store (median seconds per test across runs, oldest → newest), or an
  explicit "no benchmark history yet" notice when the store is empty;
* **corpus verdict summary** from a ``batch --format json`` JSONL
  report.

Every section renders a placeholder when its input is absent, so
``python -m repro report --output obs.html`` always succeeds.  Large
inputs are truncated with an explicit "showing N of M" note — never
silently.  Colors follow a single categorical accent for magnitude
marks plus a labelled status palette (a verdict or level is always a
text label next to its dot, never color alone); dark mode restyles via
``prefers-color-scheme``.
"""

from __future__ import annotations

import html as _html
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .bench.history import BenchHistory, BenchRun
from .bench.report import trajectory
from .export import spans_from_chrome_trace
from .recorder import Span

__all__ = ["build_report", "render_report_html", "snapshot_report"]

#: Row caps per section — the artifact must stay well under 1 MB.
MAX_WATERFALL_ROWS = 400
MAX_LOG_ROWS = 500
MAX_SPARKLINES = 40

_STATUS_CLASS = {
    "safe": "good",
    "info": "accent",
    "debug": "muted",
    "warning": "warning",
    "timeout": "warning",
    "unsafe": "serious",
    "error": "critical",
}

_CSS = """
:root {
  --surface: #fcfcfb;
  --surface-raised: #f4f4f2;
  --ink: #1a1a19;
  --ink-secondary: #56565a;
  --border: #e3e3df;
  --accent: #2a78d6;
  --good: #0ca30c;
  --warning: #fab219;
  --serious: #ec835a;
  --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19;
    --surface-raised: #242422;
    --ink: #f2f2ef;
    --ink-secondary: #b4b4ae;
    --border: #3a3a37;
    --accent: #3987e5;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 2rem 1.5rem 4rem; max-width: 64rem;
  background: var(--surface); color: var(--ink);
  font: 15px/1.5 system-ui, sans-serif;
}
h1 { font-size: 1.45rem; margin: 0 0 0.25rem; }
h2 { font-size: 1.1rem; margin: 2.25rem 0 0.5rem; }
.meta, .note { color: var(--ink-secondary); font-size: 0.85rem; }
.note { margin: 0.4rem 0; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td {
  text-align: left; padding: 0.3rem 0.7rem 0.3rem 0;
  border-bottom: 1px solid var(--border); vertical-align: top;
}
th { color: var(--ink-secondary); font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
code { font-size: 0.85em; }
.wf { font-size: 0.8rem; }
.wf-row { display: flex; align-items: center; gap: 0.6rem; padding: 1px 0; }
.wf-name {
  flex: 0 0 22rem; overflow: hidden; text-overflow: ellipsis;
  white-space: nowrap; font-family: ui-monospace, monospace;
}
.wf-track { flex: 1; position: relative; height: 12px; }
.wf-bar {
  position: absolute; top: 2px; height: 8px; min-width: 2px;
  background: var(--accent); border-radius: 4px;
}
.wf-dur {
  flex: 0 0 6rem; text-align: right;
  font-variant-numeric: tabular-nums; color: var(--ink-secondary);
}
.dot {
  display: inline-block; width: 9px; height: 9px; border-radius: 50%;
  margin-right: 0.4rem; vertical-align: baseline;
  border: 1px solid var(--border);
}
.dot.good { background: var(--good); }
.dot.warning { background: var(--warning); }
.dot.serious { background: var(--serious); }
.dot.critical { background: var(--critical); }
.dot.accent { background: var(--accent); }
.dot.muted { background: var(--ink-secondary); }
.badges { display: flex; flex-wrap: wrap; gap: 0.75rem 1.5rem; margin: 0.75rem 0; }
.badge {
  background: var(--surface-raised); border: 1px solid var(--border);
  border-radius: 6px; padding: 0.45rem 0.8rem;
}
.badge b { font-size: 1.2rem; margin-right: 0.35rem; }
.spark { display: block; }
.spark polyline {
  fill: none; stroke: var(--accent); stroke-width: 2;
  stroke-linejoin: round; stroke-linecap: round;
}
.spark circle { fill: var(--accent); }
.hstrip { display: inline-flex; align-items: flex-end; gap: 1px; height: 16px; }
.hbar {
  display: inline-block; width: 5px; background: var(--accent);
  border-radius: 1px 1px 0 0;
}
"""


def _esc(value: Any) -> str:
    return _html.escape(str(value), quote=True)


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return "%.3f s" % (ns / 1e9)
    if ns >= 1e6:
        return "%.2f ms" % (ns / 1e6)
    return "%.1f µs" % (ns / 1e3)


def _fmt_num(value: float) -> str:
    if float(value).is_integer():
        return "%d" % value
    return "%g" % value


def _status_dot(label: str) -> str:
    css = _STATUS_CLASS.get(label, "muted")
    return '<span class="dot %s"></span>%s' % (css, _esc(label))


def _placeholder(text: str) -> str:
    return '<p class="note">%s</p>' % _esc(text)


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------


def _flatten(spans: Sequence[Span]) -> List[Tuple[int, Span]]:
    rows: List[Tuple[int, Span]] = []

    def walk(span: Span, depth: int) -> None:
        rows.append((depth, span))
        for child in span.children:
            walk(child, depth + 1)

    for root in spans:
        walk(root, 0)
    return rows


def _section_waterfall(trace: Optional[Dict[str, Any]]) -> str:
    if trace is None:
        return _placeholder(
            "No trace supplied — pass --trace FILE.json "
            "(written by any command's --trace flag)."
        )
    spans = spans_from_chrome_trace(trace)
    rows = _flatten(spans)
    if not rows:
        return _placeholder("The trace contains no spans.")
    origin = min(span.start_ns for _, span in rows)
    end = max(span.end_ns for _, span in rows)
    total = max(end - origin, 1)
    shown = rows[:MAX_WATERFALL_ROWS]
    out = ['<div class="wf">']
    for depth, span in shown:
        left = 100.0 * (span.start_ns - origin) / total
        width = max(100.0 * span.duration_ns / total, 0.15)
        attrs = ", ".join(
            "%s=%s" % (k, span.attrs[k]) for k in sorted(span.attrs)
        )
        tooltip = "span %s%s" % (
            span.span_id if span.span_id is not None else "?",
            (" — " + attrs) if attrs else "",
        )
        out.append(
            '<div class="wf-row" title="%s">'
            '<span class="wf-name" style="padding-left:%drem">%s</span>'
            '<span class="wf-track"><span class="wf-bar" '
            'style="left:%.2f%%;width:%.2f%%"></span></span>'
            '<span class="wf-dur">%s</span></div>'
            % (
                _esc(tooltip), depth, _esc(span.name),
                left, min(width, 100.0 - left if left < 100.0 else width),
                _esc(_fmt_ns(span.duration_ns)),
            )
        )
    out.append("</div>")
    if len(rows) > len(shown):
        out.append(
            '<p class="note">showing %d of %d spans (deepest rows '
            "truncated)</p>" % (len(shown), len(rows))
        )
    return "".join(out)


def _trace_counters(trace: Optional[Dict[str, Any]]) -> Dict[str, float]:
    counters: Dict[str, float] = {}
    if trace is None:
        return counters
    for event in trace.get("traceEvents", ()):
        if event.get("ph") == "C":
            args = event.get("args", {})
            if "value" in args:
                counters[event["name"]] = args["value"]
    return counters


def _section_counters(counters: Dict[str, float]) -> str:
    if not counters:
        return _placeholder("No counters recorded in the trace.")
    rows = "".join(
        '<tr><td><code>%s</code></td><td class="num">%s</td></tr>'
        % (_esc(name), _esc(_fmt_num(counters[name])))
        for name in sorted(counters)
    )
    return (
        '<table><tr><th>counter</th><th class="num">value</th></tr>%s'
        "</table>" % rows
    )


def _trace_histograms(trace: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """The distribution registry a Chrome trace carries in its
    ``repro_histograms`` metadata event (empty for older traces)."""
    if trace is None:
        return {}
    from .metrics import histograms_from_jsonable

    for event in trace.get("traceEvents", ()):
        if event.get("ph") == "M" and event.get("name") == "repro_histograms":
            args = event.get("args") or {}
            return histograms_from_jsonable(args.get("histograms", {}))
    return {}


def _section_histograms(histograms: Dict[str, Any]) -> str:
    """Latency/size distributions: one row per metric with the p50/p90/
    p99/max summary and a bar strip over the log2 buckets."""
    if not histograms:
        return _placeholder(
            "No distributions recorded in the trace (the run predates "
            "histogram metrics, or no instrumented path executed)."
        )
    from .metrics import bucket_upper_bound

    rows = []
    for name in sorted(histograms):
        histogram = histograms[name]
        summary = histogram.summary()
        buckets = sorted(histogram.buckets.items())
        peak = max((count for _, count in buckets), default=1)
        bars = "".join(
            '<span class="hbar" style="height:%dpx" title="&le;%s: %d"></span>'
            % (max(2, int(round(14.0 * count / peak))),
               _esc(_fmt_num(bucket_upper_bound(index))), count)
            for index, count in buckets
        )
        rows.append(
            "<tr><td><code>%s</code></td>"
            '<td class="num">%d</td><td class="num">%s</td>'
            '<td class="num">%s</td><td class="num">%s</td>'
            '<td class="num">%s</td><td><span class="hstrip">%s</span></td></tr>'
            % (_esc(name), int(summary["count"]),
               _esc(_fmt_num(summary["p50"])), _esc(_fmt_num(summary["p90"])),
               _esc(_fmt_num(summary["p99"])), _esc(_fmt_num(summary["max"])),
               bars)
        )
    return (
        '<table><tr><th>metric</th><th class="num">n</th>'
        '<th class="num">p50</th><th class="num">p90</th>'
        '<th class="num">p99</th><th class="num">max</th>'
        "<th>log&#8322; buckets</th></tr>%s</table>" % "".join(rows)
    )


def _trace_labeled(trace: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """The labeled-counter registry a Chrome trace carries in its
    ``repro_labeled`` metadata event (empty for pre-v3 traces)."""
    if trace is None:
        return {}
    from .snapshot import labeled_from_jsonable

    for event in trace.get("traceEvents", ()):
        if event.get("ph") == "M" and event.get("name") == "repro_labeled":
            args = event.get("args") or {}
            return labeled_from_jsonable(args.get("labeled", {}))
    return {}


def _section_attribution(
    counters: Dict[str, float], labeled: Dict[str, Any]
) -> str:
    if not labeled:
        return _placeholder(
            "No labeled counters in the trace — attribution is recorded "
            "by instrumented runs (check/lint/profile/batch --trace)."
        )
    from .attr import attribution_tables, format_label_key

    out: List[str] = []
    for table in attribution_tables(counters, labeled, top=8):
        out.append(
            '<p class="note"><code>%s</code> — total %s, '
            "%s/%s attributed (%.1f%%)</p>"
            % (
                _esc(table.counter),
                _esc(_fmt_num(table.total)),
                _esc(_fmt_num(table.attributed)),
                _esc(_fmt_num(table.total)),
                100.0 * table.coverage,
            )
        )
        rows = "".join(
            '<tr><td><code>%s</code></td><td class="num">%s</td>'
            '<td class="num">%.1f%%</td></tr>'
            % (
                _esc(format_label_key(row.labels)),
                _esc(_fmt_num(row.value)),
                100.0 * row.share,
            )
            for row in table.rows
        )
        out.append(
            '<table><tr><th>labels</th><th class="num">value</th>'
            '<th class="num">share</th></tr>%s</table>' % rows
        )
        if table.hidden:
            out.append(
                '<p class="note">… %d more label combinations</p>'
                % table.hidden
            )
    return "".join(out)


def _fmt_delta_value(value: Optional[float], unit: str) -> str:
    if value is None:
        return "—"
    if unit == "ns":
        return _fmt_ns(value)
    return _fmt_num(value)


def _section_trace_diff(diff: Optional[Any], limit: int = 15) -> str:
    if diff is None:
        return _placeholder(
            "No baseline supplied — pass --baseline-trace FILE.json "
            "alongside --trace to diff the run against a reference."
        )
    diverging = diff.diverging
    out: List[str] = [
        '<p class="note">%s → %s · %d diverging metric%s</p>'
        % (
            _esc(diff.a_label),
            _esc(diff.b_label),
            len(diverging),
            "" if len(diverging) == 1 else "s",
        )
    ]
    sections = (
        ("span durations", diff.spans),
        ("counters", diff.counters),
        ("gauges", diff.gauges),
        ("attribution", diff.attribution),
    )
    for title, deltas in sections:
        if not deltas:
            continue
        shown = deltas[:limit]
        rows = "".join(
            "<tr><td><code>%s</code></td>"
            '<td class="num">%s</td><td class="num">%s</td>'
            '<td class="num">%s</td></tr>'
            % (
                _esc(delta.key),
                _esc(_fmt_delta_value(delta.a, delta.unit)),
                _esc(_fmt_delta_value(delta.b, delta.unit)),
                _esc(
                    delta.status
                    if delta.status in ("only-a", "only-b")
                    else _fmt_delta_value(delta.delta, delta.unit)
                ),
            )
            for delta in shown
        )
        out.append(
            '<p class="note">%s (worst divergence first)</p>'
            "<table><tr><th>metric</th>"
            '<th class="num">baseline</th><th class="num">candidate</th>'
            '<th class="num">Δ</th></tr>%s</table>'
            % (_esc(title), rows)
        )
        if len(deltas) > len(shown):
            out.append(
                '<p class="note">showing %d of %d rows</p>'
                % (len(shown), len(deltas))
            )
    return "".join(out)


def _section_log(events: Optional[List[Dict[str, Any]]]) -> str:
    if events is None:
        return _placeholder(
            "No log supplied — pass --log FILE.jsonl "
            "(written by any command's --log flag)."
        )
    if not events:
        return _placeholder("The log file contains no events.")
    shown = events[:MAX_LOG_ROWS]
    rows = []
    for event in shown:
        fields = event.get("fields") or {}
        detail = ", ".join("%s=%s" % (k, fields[k]) for k in sorted(fields))
        rows.append(
            "<tr><td>%s</td><td><code>%s</code></td><td>%s</td>"
            '<td class="num">%s</td><td>%s</td></tr>'
            % (
                _status_dot(str(event.get("level", "info"))),
                _esc(event.get("logger", "")),
                _esc(event.get("message", "")),
                _esc(event.get("span_id", "")),
                _esc(detail),
            )
        )
    out = [
        "<table><tr><th>level</th><th>logger</th><th>message</th>"
        '<th class="num">span</th><th>fields</th></tr>',
        "".join(rows),
        "</table>",
    ]
    if len(events) > len(shown):
        out.append(
            '<p class="note">showing first %d of %d events</p>'
            % (len(shown), len(events))
        )
    return "".join(out)


def _svg_sparkline(values: List[Optional[float]]) -> str:
    """One inline SVG sparkline (single series — the row names it, so
    no legend)."""
    points = [(i, v) for i, v in enumerate(values) if v is not None]
    if not points:
        return ""
    width, height, pad = 180, 36, 4
    low = min(v for _, v in points)
    high = max(v for _, v in points)
    span = (high - low) or 1.0
    xs = max(len(values) - 1, 1)

    def xy(i: int, v: float) -> Tuple[float, float]:
        x = pad + (width - 2 * pad) * i / xs
        y = height - pad - (height - 2 * pad) * (v - low) / span
        return x, y

    coords = " ".join("%.1f,%.1f" % xy(i, v) for i, v in points)
    lx, ly = xy(*points[-1])
    return (
        '<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d" '
        'role="img" aria-label="median seconds, oldest to newest">'
        '<polyline points="%s"/><circle cx="%.1f" cy="%.1f" r="3"/></svg>'
        % (width, height, width, height, coords, lx, ly)
    )


def _section_bench(runs: List[BenchRun]) -> str:
    if not runs:
        return _placeholder(
            "No benchmark history yet — run pytest benchmarks/ to record "
            "the first trajectory point."
        )
    series = trajectory(runs)
    names = list(series)[:MAX_SPARKLINES]
    rows = []
    for name in names:
        values = series[name]
        latest = next(
            (v for v in reversed(values) if v is not None), None
        )
        rows.append(
            "<tr><td><code>%s</code></td><td>%s</td>"
            '<td class="num">%s</td></tr>'
            % (
                _esc(name),
                _svg_sparkline(values),
                "%.4f s" % latest if latest is not None else "—",
            )
        )
    out = [
        '<p class="note">%d runs, oldest → newest; line is the '
        "median seconds per test.</p>" % len(runs),
        "<table><tr><th>benchmark</th><th>trend</th>"
        '<th class="num">latest</th></tr>',
        "".join(rows),
        "</table>",
    ]
    if len(series) > len(names):
        out.append(
            '<p class="note">showing %d of %d benchmarks</p>'
            % (len(names), len(series))
        )
    return "".join(out)


def _section_corpus(corpus: Optional[Dict[str, Any]]) -> str:
    if corpus is None:
        return _placeholder(
            "No corpus report supplied — pass --corpus FILE.jsonl "
            "(written by batch --format json --output FILE.jsonl)."
        )
    summary = corpus.get("summary", {})
    verdicts = summary.get("verdicts", {})
    badges = "".join(
        '<span class="badge"><b>%d</b>%s</span>'
        % (int(verdicts.get(verdict, 0)), _status_dot(verdict))
        for verdict in ("safe", "unsafe", "timeout", "error")
    )
    cache = summary.get("cache", {})
    notes = (
        '<p class="note">%s jobs · cache %s hits / %s misses · '
        "engine wall time %ss · %s workers</p>"
        % (
            _esc(summary.get("jobs", "?")),
            _esc(cache.get("hits", "?")), _esc(cache.get("misses", "?")),
            _esc(summary.get("wall_time_s", "?")),
            _esc(summary.get("workers", "?")),
        )
    )
    bad = [
        job for job in corpus.get("jobs", ())
        if job.get("verdict") != "safe"
    ]
    table = ""
    if bad:
        rows = "".join(
            "<tr><td>%s</td><td><code>%s</code></td><td>%s</td></tr>"
            % (
                _status_dot(str(job.get("verdict", "error"))),
                _esc(job.get("job_id", "")),
                _esc(job.get("error") or ""),
            )
            for job in bad
        )
        table = (
            "<table><tr><th>verdict</th><th>job</th><th>detail</th></tr>"
            "%s</table>" % rows
        )
    return '<div class="badges">%s</div>%s%s' % (badges, notes, table)


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------


def render_report_html(
    *,
    trace: Optional[Dict[str, Any]] = None,
    log_events: Optional[List[Dict[str, Any]]] = None,
    bench_runs: Optional[List[BenchRun]] = None,
    corpus: Optional[Dict[str, Any]] = None,
    diff: Optional[Any] = None,
    title: str = "repro observability report",
    generated: str = "",
) -> str:
    """Assemble the full document from already-loaded inputs (each
    ``None`` input renders as an explicit placeholder).  ``diff`` is a
    :class:`repro.obs.diff.ProfileDiff` against a baseline run."""
    sections = [
        ("Span waterfall", _section_waterfall(trace)),
        ("Counters", _section_counters(_trace_counters(trace))),
        ("Latency distributions", _section_histograms(_trace_histograms(trace))),
        (
            "Work attribution",
            _section_attribution(_trace_counters(trace), _trace_labeled(trace)),
        ),
        ("Trace diff vs baseline", _section_trace_diff(diff)),
        ("Structured log", _section_log(log_events)),
        ("Benchmark trajectory", _section_bench(bench_runs or [])),
        ("Latest corpus audit", _section_corpus(corpus)),
    ]
    body = "".join(
        "<h2>%s</h2>%s" % (_esc(heading), content)
        for heading, content in sections
    )
    meta = (
        '<p class="meta">generated %s</p>' % _esc(generated)
        if generated
        else ""
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width,initial-scale=1">'
        "<title>%s</title><style>%s</style></head>"
        "<body><h1>%s</h1>%s%s</body></html>\n"
        % (_esc(title), _CSS, _esc(title), meta, body)
    )


def snapshot_report(
    snapshot: Any,
    *,
    corpus: Optional[Dict[str, Any]] = None,
    title: str = "repro observability report",
    generated: str = "",
) -> str:
    """Render the report straight from an in-memory
    :class:`repro.obs.Snapshot` — the ``repro.serve`` daemon's
    ``GET /trace/<request-id>`` artifact, no files involved.  The
    snapshot is replayed into a throwaway recorder (so events and
    spans keep their id joins) and exported exactly like a ``--trace``
    file; ``corpus`` is the request's ``{"jobs": [...], "summary":
    {...}}`` document for the verdict section."""
    from .export import to_chrome_trace
    from .log import DEBUG, events_to_dicts
    from .recorder import Recorder

    recorder = Recorder(log_level=DEBUG)
    snapshot.merge_into(recorder)
    return render_report_html(
        trace=to_chrome_trace(recorder),
        log_events=events_to_dicts(recorder),
        bench_runs=None,
        corpus=corpus,
        diff=None,
        title=title,
        generated=generated,
    )


def _load_corpus_jsonl(path: str) -> Dict[str, Any]:
    """A ``batch --format json`` JSONL report: job objects, then a
    ``{"summary": ...}`` trailer."""
    jobs: List[Dict[str, Any]] = []
    summary: Dict[str, Any] = {}
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if "summary" in payload and "job_id" not in payload:
                summary = payload["summary"]
            else:
                jobs.append(payload)
    return {"jobs": jobs, "summary": summary}


def build_report(
    *,
    trace_path: Optional[str] = None,
    log_path: Optional[str] = None,
    history_dir: Optional[str] = None,
    corpus_path: Optional[str] = None,
    baseline_trace_path: Optional[str] = None,
    journal_path: Optional[str] = None,
    title: str = "repro observability report",
    generated: str = "",
) -> str:
    """Load every available input from disk and render the document.

    An explicitly-named file that does not exist raises ``OSError``
    (the caller asked for it, so silence would lie); an absent
    *default* — no history directory yet — renders its placeholder.
    ``baseline_trace_path`` (requires ``trace_path`` or
    ``journal_path``) adds the trace diff section against that
    reference run.

    ``journal_path`` names a crash-safe journal (directory or one
    segment); its replayed Snapshot supplies the trace, log events,
    and corpus section — the postmortem path, rendering a dead
    process's run with zero live state.  Mutually exclusive with
    ``trace_path``/``log_path``/``corpus_path``.
    """
    trace = None
    log_events = None
    corpus = None
    if journal_path:
        if trace_path or log_path or corpus_path:
            raise ValueError(
                "--journal replaces --trace/--log/--corpus: the journal "
                "replay supplies all three"
            )
        from .export import to_chrome_trace
        from .journal import replay_journal
        from .log import events_to_dicts

        replay = replay_journal(journal_path)
        recorder = replay.to_recorder()
        trace = to_chrome_trace(recorder)
        log_events = events_to_dicts(recorder)
        corpus = replay.corpus_doc()
    if trace_path:
        with open(trace_path, encoding="utf-8") as handle:
            trace = json.load(handle)
    if log_path:
        with open(log_path, encoding="utf-8") as handle:
            log_events = [
                json.loads(line)
                for line in handle
                if line.strip()
            ]
    bench_runs: List[BenchRun] = []
    if history_dir and os.path.isdir(history_dir):
        bench_runs = BenchHistory(history_dir).load()
    if corpus_path:
        corpus = _load_corpus_jsonl(corpus_path)
    diff = None
    if baseline_trace_path:
        if trace is None:
            raise ValueError("--baseline-trace needs --trace to diff against")
        from .diff import diff_profiles, load_run_profile, profile_from_payload

        diff = diff_profiles(
            load_run_profile(baseline_trace_path),
            profile_from_payload(trace, label=trace_path or "candidate"),
        )
    return render_report_html(
        trace=trace,
        log_events=log_events,
        bench_runs=bench_runs,
        corpus=corpus,
        diff=diff,
        title=title,
        generated=generated,
    )
