"""The instrumentation core: context-local span trees and counters.

One :class:`Recorder` holds everything observed during one run — a tree
of timed :class:`Span` objects plus flat counter/gauge registries.  The
active recorder lives in a :class:`contextvars.ContextVar`, so

* runs are isolated per context (no cross-test or cross-thread
  leakage);
* when no recorder is installed every entry point degrades to a single
  truthiness check: :func:`span` returns a shared immutable null span,
  :func:`add` / :func:`set_gauge` return immediately.

Instrumented code therefore never checks a flag itself::

    with obs.span("ptime.copying_product") as sp:
        nfa = build_product(...)
        sp.set("states", len(nfa.states))
        obs.add("ptime.product_states", len(nfa.states))

Counter *names* are dotted, subsystem-first (``nta.created``,
``mso.compile.cache_hits``, ``lint.memo.hits``), so exports group
naturally.  Heavy loops should count locally and report once at span
end — the enabled-mode overhead is then one span per phase, not one
call per state.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .metrics import Histogram, Meter, SampleSeries

__all__ = [
    "Span",
    "Recorder",
    "LabelKey",
    "label_key",
    "recording",
    "current",
    "enabled",
    "span",
    "add",
    "set_gauge",
    "gauge_max",
    "observe",
    "mark",
    "sample",
    "timed",
    "NULL_SPAN",
]

#: The canonical key of one label combination: ``(("rule", "q0/recipe"),
#: ("site", "copying_nfa"))`` — label items sorted by label name, values
#: stringified, so the same combination always hashes (and serializes)
#: identically regardless of call-site keyword order.
LabelKey = Tuple[Tuple[str, str], ...]


def label_key(labels: Dict[str, Any]) -> LabelKey:
    """The canonical registry key for a label dict."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Span:
    """One timed phase: name, wall-clock bounds, attributes, children.

    Durations are integer nanoseconds (``time.perf_counter_ns``);
    :attr:`duration_s` converts.  A span still open has ``end_ns is
    None``.

    A span opened under a recorder carries a recorder-scoped
    :attr:`span_id` (and its parent's id) so log events and trace
    exports can reference it; a span built by hand has ``span_id is
    None`` until an exporter assigns one.
    """

    __slots__ = ("name", "start_ns", "end_ns", "attrs", "children",
                 "span_id", "parent_id")

    def __init__(self, name: str, start_ns: Optional[int] = None) -> None:
        self.name = name
        self.start_ns = time.perf_counter_ns() if start_ns is None else start_ns
        self.end_ns: Optional[int] = None
        self.attrs: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None

    @property
    def duration_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None else time.perf_counter_ns()
        return end - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute (automaton sizes, counts, verdicts)."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *_exc: object) -> None:
        rec = _RECORDER.get()
        if rec is not None:
            rec._close(self)

    def __repr__(self) -> str:
        return "Span(%r, %.3fms, %d children)" % (
            self.name,
            self.duration_ns / 1e6,
            len(self.children),
        )


class _NullSpan:
    """The shared disabled-mode span: every operation is a no-op.

    A single instance (:data:`NULL_SPAN`) is returned by :func:`span`
    whenever no recorder is active, so disabled instrumentation costs
    one ContextVar read and a truthiness check — nothing is allocated.
    """

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: object) -> None:
        pass

    def __repr__(self) -> str:
        return "NULL_SPAN"

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Recorder:
    """Collected observations of one run.

    ``events`` is the structured log buffer (see :mod:`repro.obs.log`);
    it only fills when :attr:`log_level` is set — a recorder installed
    purely for spans/counters never pays for event objects.
    """

    __slots__ = ("spans", "counters", "gauges", "labeled", "events",
                 "histograms", "meters", "samples",
                 "log_level", "max_events", "_stack", "_next_span_id")

    def __init__(self, log_level: Optional[int] = None,
                 max_events: Optional[int] = None) -> None:
        self.spans: List[Span] = []  # top-level (root) spans, in order
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        # Labeled (dimensional) counters live in their own registry,
        # keyed name -> label-combination -> value, so the flat
        # ``counters`` table and everything reading it stay untouched.
        self.labeled: Dict[str, Dict[LabelKey, float]] = {}
        # Distribution registries (see repro.obs.metrics): separate
        # from the flat counters so observing a histogram can never
        # perturb the exact work-counter comparisons.
        self.histograms: Dict[str, Histogram] = {}
        self.meters: Dict[str, Meter] = {}
        self.samples: Dict[str, SampleSeries] = {}
        self.events: List[Any] = []  # LogEvent, kept untyped to avoid a cycle
        self.log_level = log_level  # None = event logging off
        # Event-buffer bound: with a cap, the oldest event is dropped
        # (and ``obs.events.dropped`` counted) when a new one arrives
        # at capacity — long-running daemons keep the recent tail.
        self.max_events = max_events  # None = unbounded
        self._stack: List[Span] = []
        self._next_span_id = 0

    # -- span plumbing (driven by the module-level API) -------------------

    def _open(self, name: str) -> Span:
        opened = Span(name)
        opened.span_id = self._next_span_id
        self._next_span_id += 1
        if self._stack:
            parent = self._stack[-1]
            opened.parent_id = parent.span_id
            parent.children.append(opened)
        else:
            self.spans.append(opened)
        self._stack.append(opened)
        return opened

    def claim_span_id(self) -> int:
        """Reserve the next recorder-scoped span id (used when grafting
        spans recorded elsewhere, e.g. worker snapshots)."""
        claimed = self._next_span_id
        self._next_span_id += 1
        return claimed

    def active_span(self) -> Optional[Span]:
        """The innermost span currently open, if any."""
        return self._stack[-1] if self._stack else None

    def _close(self, closing: Span) -> None:
        closing.end_ns = time.perf_counter_ns()
        # Unwind to the matching frame so a missed __exit__ deeper down
        # (e.g. an exception swallowed around a with-block) cannot
        # corrupt the nesting of outer spans.
        while self._stack:
            top = self._stack.pop()
            if top is closing:
                break
            if top.end_ns is None:
                top.end_ns = closing.end_ns

    # -- registries --------------------------------------------------------

    def add(self, name: str, value: float = 1, **labels: Any) -> None:
        """Increment the flat counter; with labels, also credit the
        labeled registry.  The flat total is always the sum of every
        ``add`` regardless of labels, so attribution never changes the
        numbers the bench gate and golden files compare."""
        self.counters[name] = self.counters.get(name, 0) + value
        if labels:
            by_key = self.labeled.setdefault(name, {})
            key = label_key(labels)
            by_key[key] = by_key.get(key, 0) + value

    def add_labeled_raw(self, name: str, key: LabelKey, value: float) -> None:
        """Credit the labeled registry directly *without* touching the
        flat counter — the merge path, where the flat totals already
        include the labeled contributions."""
        by_key = self.labeled.setdefault(name, {})
        by_key[key] = by_key.get(key, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        if name not in self.gauges or self.gauges[name] < value:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the named log₂-bucket histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def mark(self, name: str, n: float = 1) -> None:
        """Tick the named rate meter ``n`` events."""
        meter = self.meters.get(name)
        if meter is None:
            meter = self.meters[name] = Meter()
        meter.mark(n)

    def sample(self, name: str, value: float, ts: Optional[float] = None) -> None:
        """Append one periodic sample to the named time series."""
        series = self.samples.get(name)
        if series is None:
            series = self.samples[name] = SampleSeries()
        series.sample(value, ts)

    # -- convenience -------------------------------------------------------

    def total_duration_ns(self) -> int:
        return sum(root.duration_ns for root in self.spans)

    def find(self, name: str) -> Optional[Span]:
        """The first span (depth-first) with the given name."""
        stack = list(reversed(self.spans))
        while stack:
            node = stack.pop()
            if node.name == name:
                return node
            stack.extend(reversed(node.children))
        return None

    def __repr__(self) -> str:
        return "Recorder(spans=%d, counters=%d, gauges=%d)" % (
            len(self.spans),
            len(self.counters),
            len(self.gauges),
        )


_RECORDER: ContextVar[Optional[Recorder]] = ContextVar("repro_obs_recorder", default=None)


@contextmanager
def recording(log_level: Optional[int] = None,
              max_events: Optional[int] = None) -> Iterator[Recorder]:
    """Install a fresh recorder for the dynamic extent of the block.

    Nested ``recording()`` blocks shadow the outer recorder (the outer
    one sees nothing from the inner block), matching the context-local
    isolation the tests rely on.  Pass ``log_level`` (see
    :mod:`repro.obs.log`) to also buffer structured log events at or
    above that level; ``max_events`` bounds the event buffer (oldest
    dropped, ``obs.events.dropped`` counted) for long-running scopes.
    """
    rec = Recorder(log_level=log_level, max_events=max_events)
    token = _RECORDER.set(rec)
    try:
        yield rec
    finally:
        _RECORDER.reset(token)


def current() -> Optional[Recorder]:
    """The active recorder, or ``None`` when instrumentation is off."""
    return _RECORDER.get()


def enabled() -> bool:
    """Whether a recorder is active in this context."""
    return _RECORDER.get() is not None


def span(name: str) -> Any:
    """Open a span under the active recorder (or the shared null span).

    Usable both as a context manager and, when the caller needs the
    handle, via ``with obs.span(...) as sp: sp.set(...)``.
    """
    rec = _RECORDER.get()
    if rec is None:
        return NULL_SPAN
    return rec._open(name)


def add(name: str, value: float = 1, **labels: Any) -> None:
    """Increment a counter on the active recorder (no-op when off).

    Keyword arguments beyond ``value`` are labels: the increment also
    lands in the recorder's labeled registry under the (sorted,
    stringified) label combination — ``obs.add("ptime.product_states",
    n, rule="q0/recipe", site="copying_nfa")`` — while the flat counter
    sees the same total it always did.
    """
    rec = _RECORDER.get()
    if rec is not None:
        rec.add(name, value, **labels)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active recorder (no-op when off)."""
    rec = _RECORDER.get()
    if rec is not None:
        rec.set_gauge(name, value)


def gauge_max(name: str, value: float) -> None:
    """Raise a gauge to ``value`` if it is below it (no-op when off)."""
    rec = _RECORDER.get()
    if rec is not None:
        rec.gauge_max(name, value)


def observe(name: str, value: float) -> None:
    """Record a value into a latency/size histogram (no-op when off).

    Same zero-overhead contract as :func:`add`: one ContextVar read and
    a truthiness check when no recorder is installed.  Histograms live
    in their own registry, so observing never changes the flat counters
    the bench gate and golden files compare byte-for-byte.
    """
    rec = _RECORDER.get()
    if rec is not None:
        rec.observe(name, value)


def mark(name: str, n: float = 1) -> None:
    """Tick an event-rate meter (no-op when off)."""
    rec = _RECORDER.get()
    if rec is not None:
        rec.mark(name, n)


def sample(name: str, value: float) -> None:
    """Append a periodic sample to a bounded time series (no-op when
    off).  Sampled series feed the ``--metrics`` JSONL timeline."""
    rec = _RECORDER.get()
    if rec is not None:
        rec.sample(name, value)


@contextmanager
def timed(name: str) -> Iterator[None]:
    """Time the block into the named histogram, in milliseconds.

    Disabled mode takes the no-recorder fast path before touching the
    clock, so an uninstrumented run pays only the ContextVar read.
    """
    rec = _RECORDER.get()
    if rec is None:
        yield
        return
    start = time.perf_counter_ns()
    try:
        yield
    finally:
        rec.observe(name, (time.perf_counter_ns() - start) / 1e6)
