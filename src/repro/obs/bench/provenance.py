"""Run provenance: who/what/when produced a benchmark run.

A benchmark number without its commit is noise.  Every stored run
carries a :class:`RunProvenance` — git sha, dirty flag, wall-clock
timestamp, interpreter/platform, and the repeat count of the timing
protocol — so the trajectory store can answer "did *this commit* make
Theorem 4.11 slower" rather than "did some run at some point".

The timestamp is **injected** by the caller (``collect_provenance``
takes it as a required argument) instead of being read ambiently inside
the library, so tests and replayed sessions produce byte-identical
provenance and history filenames stay deterministic under test.
"""

from __future__ import annotations

import platform as _platform
import subprocess
import sys
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Dict, Optional

__all__ = ["RunProvenance", "collect_provenance", "UNKNOWN_SHA"]

#: Sha recorded when the run directory is not a git checkout (or git is
#: unavailable); comparisons treat it as matching nothing.
UNKNOWN_SHA = "unknown"


@dataclass(frozen=True)
class RunProvenance:
    """Identity of one benchmark run."""

    git_sha: str
    git_dirty: bool
    timestamp: float  # seconds since the epoch, UTC
    python: str
    platform: str
    repeats: int

    @property
    def short_sha(self) -> str:
        return self.git_sha[:8] if self.git_sha != UNKNOWN_SHA else UNKNOWN_SHA

    @property
    def timestamp_iso(self) -> str:
        return (
            datetime.fromtimestamp(self.timestamp, tz=timezone.utc)
            .strftime("%Y-%m-%dT%H:%M:%SZ")
        )

    def same_commit(self, other: "RunProvenance") -> bool:
        """Whether both runs come from the same (known) commit."""
        return self.git_sha == other.git_sha and self.git_sha != UNKNOWN_SHA

    def to_dict(self) -> Dict[str, Any]:
        return {
            "git_sha": self.git_sha,
            "git_dirty": self.git_dirty,
            "timestamp": self.timestamp,
            "timestamp_iso": self.timestamp_iso,
            "python": self.python,
            "platform": self.platform,
            "repeats": self.repeats,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunProvenance":
        return cls(
            git_sha=str(payload.get("git_sha", UNKNOWN_SHA)),
            git_dirty=bool(payload.get("git_dirty", False)),
            timestamp=float(payload.get("timestamp", 0.0)),
            python=str(payload.get("python", "")),
            platform=str(payload.get("platform", "")),
            repeats=int(payload.get("repeats", 1)),
        )

    @classmethod
    def unknown(cls) -> "RunProvenance":
        """Placeholder for legacy payloads recorded before provenance."""
        return cls(UNKNOWN_SHA, False, 0.0, "", "", 1)


def _git(repo_root: Optional[str], *argv: str) -> Optional[str]:
    try:
        completed = subprocess.run(
            ("git",) + argv,
            cwd=repo_root,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.decode("utf-8", "replace")


def collect_provenance(
    timestamp: float,
    repeats: int = 1,
    repo_root: Optional[str] = None,
) -> RunProvenance:
    """Collect the provenance of a run happening *now-as-told*.

    ``timestamp`` is required (injected): the caller decides what clock
    a run is stamped with.  Git queries degrade gracefully — outside a
    checkout the sha is :data:`UNKNOWN_SHA` and the dirty flag False.
    """
    sha_out = _git(repo_root, "rev-parse", "HEAD")
    sha = sha_out.strip() if sha_out else UNKNOWN_SHA
    dirty = False
    if sha != UNKNOWN_SHA:
        status = _git(repo_root, "status", "--porcelain")
        dirty = bool(status and status.strip())
    return RunProvenance(
        git_sha=sha,
        git_dirty=dirty,
        timestamp=timestamp,
        python="%d.%d.%d" % sys.version_info[:3],
        platform=_platform.platform(),
        repeats=max(1, int(repeats)),
    )
