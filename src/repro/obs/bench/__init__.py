"""Benchmark trajectory and regression detection over recorded runs.

PR 2's recorder made every decision procedure *observable*; this
package makes the observations *comparable*.  One benchmark session
produces one :class:`BenchRun` (provenance + per-test timing samples,
work counters, and gauges); :class:`BenchHistory` keeps the last N runs
under ``benchmarks/history/``; :func:`compare_runs` pits a candidate
against a baseline with a noise-aware timing detector and an *exact*
work-counter detector (counters are deterministic, so one unit of
growth is a confirmed regression — no timer noise to argue with); and
:func:`render_report` renders the trajectory as text, markdown, or
JSON for the ``python -m repro bench-report`` gate.

Typical flow::

    pytest benchmarks/bench_thm411_ptime.py          # run 1 (baseline)
    pytest benchmarks/bench_thm411_ptime.py          # run 2 (candidate)
    python -m repro bench-report --fail-on-regression
"""

from .detect import (
    DEFAULT_GAUGE_THRESHOLD,
    DEFAULT_HISTOGRAM_FLOOR,
    DEFAULT_HISTOGRAM_THRESHOLD,
    DEFAULT_IQR_FACTOR,
    DEFAULT_TIMING_FLOOR_S,
    DEFAULT_TIMING_THRESHOLD,
    Comparison,
    Finding,
    compare_runs,
    detect_counters,
    detect_gauges,
    detect_histograms,
    detect_timing,
    iqr,
)
from .history import (
    DEFAULT_HISTORY_KEEP,
    BenchEntry,
    BenchHistory,
    BenchRun,
    load_run,
    median,
    merge_runs,
    resolve_ref,
    write_run,
)
from .provenance import UNKNOWN_SHA, RunProvenance, collect_provenance
from .report import explain_findings, render_report, sparkline, trajectory

__all__ = [
    "BenchEntry",
    "BenchRun",
    "BenchHistory",
    "RunProvenance",
    "collect_provenance",
    "UNKNOWN_SHA",
    "load_run",
    "write_run",
    "merge_runs",
    "resolve_ref",
    "median",
    "iqr",
    "Finding",
    "Comparison",
    "compare_runs",
    "detect_timing",
    "detect_counters",
    "detect_gauges",
    "detect_histograms",
    "render_report",
    "explain_findings",
    "sparkline",
    "trajectory",
    "DEFAULT_HISTORY_KEEP",
    "DEFAULT_TIMING_THRESHOLD",
    "DEFAULT_IQR_FACTOR",
    "DEFAULT_TIMING_FLOOR_S",
    "DEFAULT_GAUGE_THRESHOLD",
    "DEFAULT_HISTOGRAM_THRESHOLD",
    "DEFAULT_HISTOGRAM_FLOOR",
]
