"""The benchmark run model and the on-disk trajectory store.

One :class:`BenchRun` = one benchmark session: a
:class:`~repro.obs.bench.provenance.RunProvenance` plus one
:class:`BenchEntry` per measured test (timing samples, the work
counters of the first repeat, gauges).  :class:`BenchHistory` persists
runs under ``benchmarks/history/`` — one JSON file per run, named
``run-<utc-stamp>-<sha8>.json`` so a plain filename sort is
chronological — and prunes the directory to the newest ``keep`` runs.

The stored payload is the same ``version: 2`` document written to
``BENCH_results.json``, so a history file and the repo-root results
file are interchangeable inputs to ``python -m repro bench-report``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

from .provenance import RunProvenance

__all__ = [
    "BenchEntry",
    "BenchRun",
    "BenchHistory",
    "median",
    "resolve_ref",
    "DEFAULT_HISTORY_KEEP",
]

#: How many runs the history directory retains by default.
DEFAULT_HISTORY_KEEP = 20

RESULTS_VERSION = 2


def median(samples: List[float]) -> float:
    """The sample median (mean of the two middle values when even)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass
class BenchEntry:
    """One test's measurement within a run.

    ``labeled`` is the first repeat's labeled-counter registry in JSON
    form (see :func:`repro.obs.snapshot.labeled_to_jsonable`) and
    ``span_profile`` its span name-path aggregates — both optional:
    runs recorded before attribution existed load with them empty, and
    ``bench-report --explain`` degrades to counter-only explanations.

    ``histograms`` holds the first repeat's latency/size distribution
    *summaries* (``{name: {count, min, p50, p90, p99, max, sum}}``, see
    :meth:`repro.obs.Histogram.summary`) — summaries rather than raw
    buckets, because the tail detector only needs the quantiles and the
    stored run documents stay human-readable.  Optional like
    ``labeled``: older runs load with it empty.
    """

    test: str
    samples: List[float]  # seconds, one per repeat, in execution order
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    labeled: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    span_profile: List[Dict[str, Any]] = field(default_factory=list)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """The run's representative time: the median over repeats."""
        return median(self.samples)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "test": self.test,
            "seconds": self.seconds,
            "samples": list(self.samples),
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
        }
        if self.labeled:
            out["labeled"] = {
                name: list(rows) for name, rows in sorted(self.labeled.items())
            }
        if self.span_profile:
            out["span_profile"] = [dict(row) for row in self.span_profile]
        if self.histograms:
            out["histograms"] = {
                name: {key: summary[key] for key in sorted(summary)}
                for name, summary in sorted(self.histograms.items())
            }
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchEntry":
        samples = payload.get("samples")
        if not samples:
            # Legacy (version 1) entries recorded a single ``seconds``.
            seconds = payload.get("seconds", 0.0)
            samples = [float(seconds)]
        return cls(
            test=str(payload["test"]),
            samples=[float(sample) for sample in samples],
            counters={str(k): float(v) for k, v in payload.get("counters", {}).items()},
            gauges={str(k): float(v) for k, v in payload.get("gauges", {}).items()},
            labeled={
                str(name): [dict(row) for row in rows]
                for name, rows in (payload.get("labeled") or {}).items()
            },
            span_profile=[dict(row) for row in payload.get("span_profile", ())],
            histograms={
                str(name): {str(k): float(v) for k, v in summary.items()}
                for name, summary in (payload.get("histograms") or {}).items()
            },
        )


@dataclass
class BenchRun:
    """One benchmark session: provenance plus entries keyed by test id."""

    provenance: RunProvenance
    entries: Dict[str, BenchEntry] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": RESULTS_VERSION,
            "provenance": self.provenance.to_dict(),
            "results": [entry.to_dict() for entry in self.entries.values()],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchRun":
        raw_provenance = payload.get("provenance")
        provenance = (
            RunProvenance.from_dict(raw_provenance)
            if raw_provenance
            else RunProvenance.unknown()
        )
        entries: Dict[str, BenchEntry] = {}
        for raw in payload.get("results", ()):
            entry = BenchEntry.from_dict(raw)
            entries[entry.test] = entry
        return cls(provenance=provenance, entries=entries)


def load_run(path: str) -> Optional[BenchRun]:
    """Read a run document (either format version), ``None`` if absent
    or unparseable."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    return BenchRun.from_dict(payload)


def write_run(run: BenchRun, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(run.to_dict(), handle, indent=2)
        handle.write("\n")


def merge_runs(existing: Optional[BenchRun], fresh: BenchRun) -> BenchRun:
    """Merge a fresh (possibly partial) session into the stored results.

    Running only a subset of the benchmark files must not drop every
    other test's numbers, so same-commit entries are carried over and
    re-measured tests overwritten.  Entries from a *different* commit
    are discarded — mixing two code versions in one run document would
    poison counter comparisons.
    """
    if existing is None or not fresh.provenance.same_commit(existing.provenance):
        return fresh
    entries = dict(existing.entries)
    entries.update(fresh.entries)
    return BenchRun(provenance=fresh.provenance, entries=entries)


class BenchHistory:
    """Append-only (pruned) store of benchmark runs in a directory."""

    def __init__(self, directory: str, keep: int = DEFAULT_HISTORY_KEEP) -> None:
        self.directory = directory
        self.keep = max(1, int(keep))

    # -- paths -------------------------------------------------------------

    def paths(self) -> List[str]:
        """All run files, oldest first (filenames sort chronologically)."""
        try:
            names = sorted(
                name
                for name in os.listdir(self.directory)
                if name.startswith("run-") and name.endswith(".json")
            )
        except OSError:
            return []
        return [os.path.join(self.directory, name) for name in names]

    def _filename_for(self, run: BenchRun) -> str:
        stamp = datetime.fromtimestamp(
            run.provenance.timestamp, tz=timezone.utc
        ).strftime("%Y%m%dT%H%M%S.%fZ")
        return "run-%s-%s.json" % (stamp, run.provenance.short_sha)

    # -- store -------------------------------------------------------------

    def append(self, run: BenchRun) -> str:
        """Persist a run and prune to the newest ``keep``; returns the
        written path."""
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, self._filename_for(run))
        suffix = 0
        while os.path.exists(path):
            # Two runs stamped within the same microsecond: disambiguate.
            suffix += 1
            path = os.path.join(
                self.directory,
                self._filename_for(run).replace(".json", "-%d.json" % suffix),
            )
        write_run(run, path)
        self.prune()
        return path

    def prune(self) -> List[str]:
        """Delete all but the newest ``keep`` runs; returns what was
        removed.  ``*-baseline.json`` runs are committed reference
        points (the CI regression gate compares against them) and are
        never pruned."""
        paths = [
            path for path in self.paths()
            if not path.endswith("-baseline.json")
        ]
        doomed = paths[: -self.keep] if len(paths) > self.keep else []
        for path in doomed:
            try:
                os.remove(path)
            except OSError:
                pass
        return doomed

    def load(self) -> List[BenchRun]:
        """All stored runs, oldest first (unreadable files skipped)."""
        runs: List[BenchRun] = []
        for path in self.paths():
            run = load_run(path)
            if run is not None:
                runs.append(run)
        return runs


def resolve_ref(
    runs: List[BenchRun],
    ref: Optional[str],
    relative_to: Optional[BenchRun] = None,
) -> BenchRun:
    """Resolve a baseline/candidate reference against loaded history.

    Accepted forms: ``latest``, ``previous`` (the run before
    ``relative_to``, default the latest), a negative index like ``-2``
    (second-newest), a git sha prefix (newest matching run), or a path
    to a run JSON file (e.g. a committed baseline or
    ``BENCH_results.json``).
    """
    if ref and (os.sep in ref or ref.endswith(".json")) and os.path.exists(ref):
        run = load_run(ref)
        if run is None:
            raise ValueError("unreadable run file %r" % ref)
        return run
    if not runs:
        raise ValueError("no benchmark history runs found")
    if ref is None or ref == "latest":
        return runs[-1]
    if ref == "previous":
        pivot = relative_to if relative_to is not None else runs[-1]
        candidates = [run for run in runs if run is not pivot]
        if not candidates:
            raise ValueError(
                "need at least two stored runs to compare (run the "
                "benchmark suite again, or pass --baseline FILE)"
            )
        earlier = [
            run
            for run in candidates
            if run.provenance.timestamp <= pivot.provenance.timestamp
        ]
        return (earlier or candidates)[-1]
    index: Optional[int]
    try:
        index = int(ref)
    except ValueError:
        index = None
    if index is not None:
        try:
            return runs[index if index < 0 else index - 1]
        except IndexError:
            raise ValueError(
                "run index %s out of range (have %d runs)" % (ref, len(runs))
            ) from None
    matches = [run for run in runs if run.provenance.git_sha.startswith(ref)]
    if not matches:
        raise ValueError("no stored run matches ref %r" % ref)
    return matches[-1]
