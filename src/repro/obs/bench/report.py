"""Rendering the benchmark trajectory and a regression verdict.

Three formats off one comparison:

* ``text`` — what ``python -m repro bench-report`` prints: run
  provenance, a per-test sparkline over the stored history (median
  seconds, oldest to newest), and the findings worst-first;
* ``markdown`` — the same as tables, uploaded by CI as the
  ``bench-report`` artifact;
* ``json`` — the machine-readable comparison document.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .detect import Comparison, Finding
from .history import BenchRun

__all__ = ["render_report", "sparkline", "trajectory"]

_BLOCKS = "▁▂▃▄▅▆▇█"  # ▁▂▃▄▅▆▇█


def sparkline(values: List[Optional[float]]) -> str:
    """A unicode block sparkline of the series (gaps render as spaces,
    empty input as '')."""
    points = [value for value in values if value is not None]
    if not points:
        return ""
    low, high = min(points), max(points)
    if high <= low:
        return _BLOCKS[3] * len(values)
    out = []
    for value in values:
        if value is None:
            out.append(" ")
            continue
        index = int((value - low) / (high - low) * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[index])
    return "".join(out)


def trajectory(runs: List[BenchRun]) -> Dict[str, List[Optional[float]]]:
    """Per-test median-seconds series across the runs (oldest first);
    ``None`` marks runs that did not measure the test."""
    tests: List[str] = []
    seen = set()
    for run in runs:
        for test in run.entries:
            if test not in seen:
                seen.add(test)
                tests.append(test)
    return {
        test: [
            run.entries[test].seconds if test in run.entries else None
            for run in runs
        ]
        for test in tests
    }


def _format_value(finding: Finding, value: float) -> str:
    if finding.kind == "timing":
        return "%.4fs" % value
    if float(value).is_integer():
        return "%d" % value
    return "%.2f" % value


def _format_delta(finding: Finding) -> str:
    if finding.ratio == float("inf"):
        return "+inf"
    return "%+.1f%%" % finding.delta_percent


def _provenance_line(label: str, run: BenchRun) -> str:
    prov = run.provenance
    dirty = " (dirty)" if prov.git_dirty else ""
    return "%-10s %s%s  %s  py%s  repeats=%d  %d tests" % (
        label + ":",
        prov.short_sha,
        dirty,
        prov.timestamp_iso,
        prov.python,
        prov.repeats,
        len(run.entries),
    )


def _short_test(test: str, width: int = 0) -> str:
    # "benchmarks/bench_x.py::TestY::test_z[p]" → "bench_x.py::test_z[p]"
    path, _, rest = test.partition("::")
    name = rest.rsplit("::", 1)[-1] if rest else ""
    filename = path.rsplit("/", 1)[-1]
    short = "%s::%s" % (filename, name) if name else filename
    if width and len(short) > width:
        # Keep the tail: the parametrization id is the distinguishing part.
        return "…" + short[-(width - 1):]
    return short


def _findings_lines(findings: List[Finding]) -> List[str]:
    lines = []
    for finding in findings:
        lines.append(
            "  %-7s  %-32s  %s -> %s  (%s)  %s"
            % (
                finding.kind.upper(),
                finding.metric,
                _format_value(finding, finding.baseline),
                _format_value(finding, finding.candidate),
                _format_delta(finding),
                _short_test(finding.test),
            )
        )
    return lines


def _render_text(runs: List[BenchRun], comparison: Comparison, limit: int) -> str:
    lines: List[str] = []
    lines.append("benchmark trajectory: %d stored run%s"
                 % (len(runs), "" if len(runs) == 1 else "s"))
    lines.append(_provenance_line("baseline", comparison.baseline))
    lines.append(_provenance_line("candidate", comparison.candidate))
    if comparison.same_commit:
        lines.append("same commit on both sides: timing noise self-check")
    series = trajectory(runs)
    shown = sorted(comparison.candidate.entries)
    if limit:
        shown = shown[:limit]
    if runs and shown:
        lines.append("")
        lines.append("per-test trend (median seconds, oldest -> newest):")
        width = max(
            (len(_short_test(test, 60)) for test in shown), default=0
        )
        for test in shown:
            values = series.get(test, [])
            latest = comparison.candidate.entries[test].seconds
            lines.append(
                "  %-*s  %10.4fs  %s"
                % (width, _short_test(test, 60), latest, sparkline(values))
            )
    regressions = comparison.regressions
    improvements = comparison.improvements
    if limit:
        regressions = regressions[:limit]
        improvements = improvements[:limit]
    if regressions:
        lines.append("")
        lines.append("regressions (worst first):")
        lines.extend(_findings_lines(regressions))
    if improvements:
        lines.append("")
        lines.append("improvements:")
        lines.extend(_findings_lines(improvements))
    if comparison.added_tests:
        lines.append("")
        lines.append("new tests (no baseline): %d" % len(comparison.added_tests))
    if comparison.removed_tests:
        lines.append("tests missing from the candidate: %d"
                     % len(comparison.removed_tests))
    lines.append("")
    if comparison.has_regressions:
        lines.append("%d regression%s detected."
                     % (len(comparison.regressions),
                        "" if len(comparison.regressions) == 1 else "s"))
    else:
        lines.append("no regressions detected.")
    return "\n".join(lines) + "\n"


def _markdown_findings(title: str, findings: List[Finding]) -> List[str]:
    lines = ["", "## %s" % title, ""]
    if not findings:
        lines.append("_none_")
        return lines
    lines.append("| kind | metric | test | baseline | candidate | delta |")
    lines.append("|------|--------|------|---------:|----------:|------:|")
    for finding in findings:
        lines.append(
            "| %s | `%s` | `%s` | %s | %s | %s |"
            % (
                finding.kind,
                finding.metric,
                _short_test(finding.test),
                _format_value(finding, finding.baseline),
                _format_value(finding, finding.candidate),
                _format_delta(finding),
            )
        )
    return lines


def _render_markdown(runs: List[BenchRun], comparison: Comparison, limit: int) -> str:
    base, cand = comparison.baseline.provenance, comparison.candidate.provenance
    lines: List[str] = ["# Benchmark regression report", ""]
    lines.append("| run | sha | dirty | timestamp | python | repeats | tests |")
    lines.append("|-----|-----|-------|-----------|--------|--------:|------:|")
    for label, run, prov in (
        ("baseline", comparison.baseline, base),
        ("candidate", comparison.candidate, cand),
    ):
        lines.append(
            "| %s | `%s` | %s | %s | %s | %d | %d |"
            % (label, prov.short_sha, "yes" if prov.git_dirty else "no",
               prov.timestamp_iso, prov.python, prov.repeats, len(run.entries))
        )
    lines.append("")
    lines.append(
        "**Verdict:** %s"
        % ("%d regression(s) detected" % len(comparison.regressions)
           if comparison.has_regressions else "no regressions detected")
    )
    regressions = comparison.regressions
    improvements = comparison.improvements
    if limit:
        regressions = regressions[:limit]
        improvements = improvements[:limit]
    lines.extend(_markdown_findings("Regressions (worst first)", regressions))
    lines.extend(_markdown_findings("Improvements", improvements))
    series = trajectory(runs)
    shown = sorted(comparison.candidate.entries)
    if limit:
        shown = shown[:limit]
    if shown:
        lines.extend(["", "## Trajectory (median seconds over %d runs)" % len(runs), ""])
        lines.append("| test | latest | trend |")
        lines.append("|------|-------:|-------|")
        for test in shown:
            lines.append(
                "| `%s` | %.4fs | %s |"
                % (_short_test(test),
                   comparison.candidate.entries[test].seconds,
                   sparkline(series.get(test, [])))
            )
    return "\n".join(lines) + "\n"


def _render_json(runs: List[BenchRun], comparison: Comparison) -> str:
    document: Dict[str, Any] = comparison.to_dict()
    document["runs_in_history"] = len(runs)
    document["trajectory"] = trajectory(runs)
    return json.dumps(document, indent=2) + "\n"


def render_report(
    runs: List[BenchRun],
    comparison: Comparison,
    fmt: str = "text",
    limit: int = 0,
) -> str:
    """Render the comparison (plus history context) in the format."""
    if fmt == "json":
        return _render_json(runs, comparison)
    if fmt == "markdown":
        return _render_markdown(runs, comparison, limit)
    return _render_text(runs, comparison, limit)
