"""Rendering the benchmark trajectory and a regression verdict.

Three formats off one comparison:

* ``text`` — what ``python -m repro bench-report`` prints: run
  provenance, a per-test sparkline over the stored history (median
  seconds, oldest to newest), and the findings worst-first;
* ``markdown`` — the same as tables, uploaded by CI as the
  ``bench-report`` artifact;
* ``json`` — the machine-readable comparison document.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .detect import Comparison, Finding
from .history import BenchEntry, BenchRun

__all__ = ["render_report", "sparkline", "trajectory", "explain_findings"]

_BLOCKS = "▁▂▃▄▅▆▇█"  # ▁▂▃▄▅▆▇█


def sparkline(values: List[Optional[float]]) -> str:
    """A unicode block sparkline of the series (gaps render as spaces,
    empty input as '')."""
    points = [value for value in values if value is not None]
    if not points:
        return ""
    low, high = min(points), max(points)
    if high <= low:
        return _BLOCKS[3] * len(values)
    out = []
    for value in values:
        if value is None:
            out.append(" ")
            continue
        index = int((value - low) / (high - low) * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[index])
    return "".join(out)


def trajectory(runs: List[BenchRun]) -> Dict[str, List[Optional[float]]]:
    """Per-test median-seconds series across the runs (oldest first);
    ``None`` marks runs that did not measure the test."""
    tests: List[str] = []
    seen = set()
    for run in runs:
        for test in run.entries:
            if test not in seen:
                seen.add(test)
                tests.append(test)
    return {
        test: [
            run.entries[test].seconds if test in run.entries else None
            for run in runs
        ]
        for test in tests
    }


def _format_value(finding: Finding, value: float) -> str:
    if finding.kind == "timing":
        return "%.4fs" % value
    if float(value).is_integer():
        return "%d" % value
    return "%.2f" % value


def _format_delta(finding: Finding) -> str:
    if finding.ratio == float("inf"):
        return "+inf"
    return "%+.1f%%" % finding.delta_percent


def _provenance_line(label: str, run: BenchRun) -> str:
    prov = run.provenance
    dirty = " (dirty)" if prov.git_dirty else ""
    return "%-10s %s%s  %s  py%s  repeats=%d  %d tests" % (
        label + ":",
        prov.short_sha,
        dirty,
        prov.timestamp_iso,
        prov.python,
        prov.repeats,
        len(run.entries),
    )


def _short_test(test: str, width: int = 0) -> str:
    # "benchmarks/bench_x.py::TestY::test_z[p]" → "bench_x.py::test_z[p]"
    path, _, rest = test.partition("::")
    name = rest.rsplit("::", 1)[-1] if rest else ""
    filename = path.rsplit("/", 1)[-1]
    short = "%s::%s" % (filename, name) if name else filename
    if width and len(short) > width:
        # Keep the tail: the parametrization id is the distinguishing part.
        return "…" + short[-(width - 1):]
    return short


def _findings_lines(findings: List[Finding]) -> List[str]:
    lines = []
    for finding in findings:
        lines.append(
            "  %-7s  %-32s  %s -> %s  (%s)  %s"
            % (
                finding.kind.upper(),
                finding.metric,
                _format_value(finding, finding.baseline),
                _format_value(finding, finding.candidate),
                _format_delta(finding),
                _short_test(finding.test),
            )
        )
    return lines


# ---------------------------------------------------------------------------
# Explaining regressions (bench-report --explain)
# ---------------------------------------------------------------------------


def _labeled_deltas(
    base: Optional[BenchEntry], cand: Optional[BenchEntry], metric: str
) -> List[Dict[str, Any]]:
    """Per-label-combination deltas of one counter between two entries,
    biggest increase first."""
    from ..attr import format_label_key
    from ..snapshot import labeled_from_jsonable

    base_keys = labeled_from_jsonable(base.labeled if base else {}).get(metric, {})
    cand_keys = labeled_from_jsonable(cand.labeled if cand else {}).get(metric, {})
    deltas = []
    for key in set(base_keys) | set(cand_keys):
        delta = cand_keys.get(key, 0) - base_keys.get(key, 0)
        deltas.append(
            {
                "labels": dict(key),
                "label_text": format_label_key(key),
                "baseline": base_keys.get(key, 0),
                "candidate": cand_keys.get(key, 0),
                "delta": delta,
            }
        )
    deltas.sort(key=lambda row: (-row["delta"], row["label_text"]))
    return deltas


def _span_divergence(
    base: Optional[BenchEntry], cand: Optional[BenchEntry]
) -> List[Dict[str, Any]]:
    """Span-path duration deltas between the two entries' stored span
    profiles, worst divergence first."""
    def rows_of(entry: Optional[BenchEntry]) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for row in (entry.span_profile if entry else ()):
            out[str(row["path"])] = out.get(str(row["path"]), 0) + int(
                row.get("duration_ns", 0)
            )
        return out

    base_spans, cand_spans = rows_of(base), rows_of(cand)
    deltas = []
    for path in set(base_spans) | set(cand_spans):
        delta_ns = cand_spans.get(path, 0) - base_spans.get(path, 0)
        deltas.append(
            {
                "path": path,
                "baseline_ns": base_spans.get(path),
                "candidate_ns": cand_spans.get(path),
                "delta_ns": delta_ns,
                "status": (
                    "added" if path not in base_spans
                    else "removed" if path not in cand_spans
                    else "changed"
                ),
            }
        )
    deltas.sort(key=lambda row: (-abs(row["delta_ns"]), row["path"]))
    return deltas


def explain_findings(
    comparison: Comparison, top: int = 3
) -> List[Dict[str, Any]]:
    """Attribution for each regression: which labeled contributors grew
    and which span diverged most — the 'why' behind the finding."""
    explained: List[Dict[str, Any]] = []
    for finding in comparison.regressions:
        base = comparison.baseline.entries.get(finding.test)
        cand = comparison.candidate.entries.get(finding.test)
        spans = _span_divergence(base, cand)
        note: Dict[str, Any] = {
            "test": finding.test,
            "metric": finding.metric,
            "kind": finding.kind,
            "diverging_spans": spans[:top],
        }
        if finding.kind in ("counter", "gauge"):
            contributors = _labeled_deltas(base, cand, finding.metric)
            note["has_labels"] = bool(contributors)
            # Only contributors that actually moved explain a delta.
            note["contributors"] = [
                row for row in contributors if row["delta"]
            ][:top]
        explained.append(note)
    return explained


def _format_ns(value: Optional[int]) -> str:
    if value is None:
        return "-"
    if value >= 1e6:
        return "%.2fms" % (value / 1e6)
    return "%.1fus" % (value / 1e3)


def _explain_lines(comparison: Comparison, markdown: bool) -> List[str]:
    notes = explain_findings(comparison)
    lines: List[str] = [""]
    lines.append("## Why (attribution)" if markdown else "why (attribution):")
    if not notes:
        lines.append("")
        lines.append("_no regressions to explain_" if markdown
                     else "  no regressions to explain")
        return lines
    code = "`" if markdown else ""
    for note in notes:
        lines.append("")
        lines.append(
            "%s%s%s on %s%s%s:" % (code, note["metric"], code,
                                   code, _short_test(note["test"]), code)
        )
        for row in note.get("contributors", ())[:3]:
            lines.append(
                "%s- top contributor %s%s%s: %s -> %s (%+g)"
                % ("" if markdown else "  ", code, row["label_text"], code,
                   "%g" % row["baseline"], "%g" % row["candidate"], row["delta"])
            )
        if not note.get("contributors") and note["kind"] in ("counter", "gauge"):
            lines.append(
                "%s- %s"
                % (
                    "" if markdown else "  ",
                    "every labeled contributor is unchanged (the delta "
                    "lives in unlabeled work)"
                    if note.get("has_labels")
                    else "no labeled attribution recorded for this metric "
                    "(older run format?)",
                )
            )
        for row in note.get("diverging_spans", ())[:1]:
            lines.append(
                "%s- hottest diverging span %s%s%s: %s -> %s (%s)"
                % ("" if markdown else "  ", code, row["path"], code,
                   _format_ns(row["baseline_ns"]), _format_ns(row["candidate_ns"]),
                   row["status"] if row["status"] != "changed"
                   else "%+.2fms" % (row["delta_ns"] / 1e6))
            )
        if not note.get("diverging_spans"):
            lines.append(
                "%s- no span profile stored on either side"
                % ("" if markdown else "  ")
            )
    return lines


def _distribution_rows(
    comparison: Comparison, shown: List[str]
) -> List[tuple]:
    """(test, metric, summary) rows of the candidate's histogram
    summaries, in test order."""
    rows: List[tuple] = []
    for test in shown:
        entry = comparison.candidate.entries[test]
        for name in sorted(entry.histograms):
            rows.append((test, name, entry.histograms[name]))
    return rows


def _render_text(
    runs: List[BenchRun], comparison: Comparison, limit: int,
    explain: bool = False,
) -> str:
    lines: List[str] = []
    lines.append("benchmark trajectory: %d stored run%s"
                 % (len(runs), "" if len(runs) == 1 else "s"))
    lines.append(_provenance_line("baseline", comparison.baseline))
    lines.append(_provenance_line("candidate", comparison.candidate))
    if comparison.same_commit:
        lines.append("same commit on both sides: timing noise self-check")
    series = trajectory(runs)
    shown = sorted(comparison.candidate.entries)
    if limit:
        shown = shown[:limit]
    if runs and shown:
        lines.append("")
        lines.append("per-test trend (median seconds, oldest -> newest):")
        width = max(
            (len(_short_test(test, 60)) for test in shown), default=0
        )
        for test in shown:
            values = series.get(test, [])
            latest = comparison.candidate.entries[test].seconds
            lines.append(
                "  %-*s  %10.4fs  %s"
                % (width, _short_test(test, 60), latest, sparkline(values))
            )
    distribution_rows = _distribution_rows(comparison, shown)
    if distribution_rows:
        lines.append("")
        lines.append("distributions (candidate, first repeat):")
        for test, name, summary in distribution_rows[: limit or None]:
            lines.append(
                "  %-28s  n=%-4d p50=%-9.3f p99=%-9.3f max=%-9.3f %s"
                % (name, int(summary.get("count", 0)),
                   summary.get("p50", 0.0), summary.get("p99", 0.0),
                   summary.get("max", 0.0), _short_test(test))
            )
    regressions = comparison.regressions
    improvements = comparison.improvements
    if limit:
        regressions = regressions[:limit]
        improvements = improvements[:limit]
    if regressions:
        lines.append("")
        lines.append("regressions (worst first):")
        lines.extend(_findings_lines(regressions))
    if improvements:
        lines.append("")
        lines.append("improvements:")
        lines.extend(_findings_lines(improvements))
    if comparison.added_tests:
        lines.append("")
        lines.append("new tests (no baseline): %d" % len(comparison.added_tests))
    if comparison.removed_tests:
        lines.append("tests missing from the candidate: %d"
                     % len(comparison.removed_tests))
    lines.append("")
    if comparison.has_regressions:
        lines.append("%d regression%s detected."
                     % (len(comparison.regressions),
                        "" if len(comparison.regressions) == 1 else "s"))
    else:
        lines.append("no regressions detected.")
    if explain:
        lines.extend(_explain_lines(comparison, markdown=False))
    return "\n".join(lines) + "\n"


def _markdown_findings(title: str, findings: List[Finding]) -> List[str]:
    lines = ["", "## %s" % title, ""]
    if not findings:
        lines.append("_none_")
        return lines
    lines.append("| kind | metric | test | baseline | candidate | delta |")
    lines.append("|------|--------|------|---------:|----------:|------:|")
    for finding in findings:
        lines.append(
            "| %s | `%s` | `%s` | %s | %s | %s |"
            % (
                finding.kind,
                finding.metric,
                _short_test(finding.test),
                _format_value(finding, finding.baseline),
                _format_value(finding, finding.candidate),
                _format_delta(finding),
            )
        )
    return lines


def _run_id(run: BenchRun) -> str:
    prov = run.provenance
    return "%s@%s" % (prov.short_sha, prov.timestamp_iso)


def _render_markdown(
    runs: List[BenchRun], comparison: Comparison, limit: int,
    explain: bool = False,
    baseline_ref: Optional[str] = None,
    candidate_ref: Optional[str] = None,
) -> str:
    base, cand = comparison.baseline.provenance, comparison.candidate.provenance
    lines: List[str] = ["# Benchmark regression report", ""]
    lines.append("| run | sha | dirty | timestamp | python | repeats | tests |")
    lines.append("|-----|-----|-------|-----------|--------|--------:|------:|")
    for label, run, prov in (
        ("baseline", comparison.baseline, base),
        ("candidate", comparison.candidate, cand),
    ):
        lines.append(
            "| %s | `%s` | %s | %s | %s | %d | %d |"
            % (label, prov.short_sha, "yes" if prov.git_dirty else "no",
               prov.timestamp_iso, prov.python, prov.repeats, len(run.entries))
        )
    lines.append("")
    lines.append(
        "**Verdict:** %s"
        % ("%d regression(s) detected" % len(comparison.regressions)
           if comparison.has_regressions else "no regressions detected")
    )
    regressions = comparison.regressions
    improvements = comparison.improvements
    if limit:
        regressions = regressions[:limit]
        improvements = improvements[:limit]
    lines.extend(_markdown_findings("Regressions (worst first)", regressions))
    lines.extend(_markdown_findings("Improvements", improvements))
    series = trajectory(runs)
    shown = sorted(comparison.candidate.entries)
    if limit:
        shown = shown[:limit]
    if shown:
        lines.extend(["", "## Trajectory (median seconds over %d runs)" % len(runs), ""])
        lines.append("| test | latest | trend |")
        lines.append("|------|-------:|-------|")
        for test in shown:
            lines.append(
                "| `%s` | %.4fs | %s |"
                % (_short_test(test),
                   comparison.candidate.entries[test].seconds,
                   sparkline(series.get(test, [])))
            )
    distribution_rows = _distribution_rows(comparison, shown)
    if distribution_rows:
        lines.extend(["", "## Distributions (candidate, first repeat)", ""])
        lines.append("| metric | test | n | p50 | p99 | max |")
        lines.append("|--------|------|--:|----:|----:|----:|")
        for test, name, summary in distribution_rows[: limit or None]:
            lines.append(
                "| `%s` | `%s` | %d | %.3f | %.3f | %.3f |"
                % (name, _short_test(test), int(summary.get("count", 0)),
                   summary.get("p50", 0.0), summary.get("p99", 0.0),
                   summary.get("max", 0.0))
            )
    if explain:
        lines.extend(_explain_lines(comparison, markdown=True))
    # Footer: name exactly what was compared, so an uploaded artifact
    # is self-describing.
    lines.extend(["", "---", ""])
    lines.append(
        "_Compared candidate `%s` (run `%s`) against baseline `%s` "
        "(run `%s`)._"
        % (candidate_ref or "latest", _run_id(comparison.candidate),
           baseline_ref or "previous", _run_id(comparison.baseline))
    )
    return "\n".join(lines) + "\n"


def _render_json(
    runs: List[BenchRun], comparison: Comparison, explain: bool = False
) -> str:
    document: Dict[str, Any] = comparison.to_dict()
    document["runs_in_history"] = len(runs)
    document["trajectory"] = trajectory(runs)
    if explain:
        document["explain"] = explain_findings(comparison)
    return json.dumps(document, indent=2) + "\n"


def render_report(
    runs: List[BenchRun],
    comparison: Comparison,
    fmt: str = "text",
    limit: int = 0,
    explain: bool = False,
    baseline_ref: Optional[str] = None,
    candidate_ref: Optional[str] = None,
) -> str:
    """Render the comparison (plus history context) in the format.

    ``explain`` appends the attribution section (labeled-counter
    contributors and the hottest diverging span per regression);
    ``baseline_ref``/``candidate_ref`` name the refs the markdown
    footer reports.
    """
    if fmt == "json":
        return _render_json(runs, comparison, explain=explain)
    if fmt == "markdown":
        return _render_markdown(runs, comparison, limit, explain=explain,
                                baseline_ref=baseline_ref,
                                candidate_ref=candidate_ref)
    return _render_text(runs, comparison, limit, explain=explain)
