"""Regression detection between two benchmark runs.

Two detectors with deliberately different epistemics:

* **Timing** is noisy, so the timing detector is noise-aware: it
  compares medians over the repeat samples and only flags a candidate
  outside the baseline's IQR band *and* beyond a relative threshold.
  Sub-floor tests (median under ``timing_floor_s``) are skipped
  entirely — a 300-microsecond measurement on a shared CI runner
  carries no signal.

* **Work counters** (``ptime.product_states``,
  ``nta.intersection_states``, ``mso.eval.fo_candidates``, ...) are
  deterministic functions of the code and the input family, so the
  counter detector is *exact*: any growth, even by one unit, is a true
  regression — the decidable analogue of typechecking a performance
  property, immune to timer noise.

Gauges (``mem.peak_kb``, ``mso.compile.automaton_states``) sit in
between — allocator behaviour wobbles — so they use the relative
threshold but no noise band.

**Histogram summaries** (``lint.rule.ms``, ``ptime.product_size``)
get a *tail* detector: a p99 that grew past the threshold while the
p50 stayed flat is a tail-latency regression — a qualitatively
different failure from a uniform slowdown (which moves both), and one
the median-based timing detector is structurally blind to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .history import BenchEntry, BenchRun, median

__all__ = [
    "Finding",
    "Comparison",
    "compare_runs",
    "detect_timing",
    "detect_counters",
    "detect_gauges",
    "detect_histograms",
    "iqr",
    "DEFAULT_TIMING_THRESHOLD",
    "DEFAULT_IQR_FACTOR",
    "DEFAULT_TIMING_FLOOR_S",
    "DEFAULT_GAUGE_THRESHOLD",
    "DEFAULT_HISTOGRAM_THRESHOLD",
    "DEFAULT_HISTOGRAM_FLOOR",
]

DEFAULT_TIMING_THRESHOLD = 0.25  # +25% on the median
DEFAULT_IQR_FACTOR = 1.5  # Tukey's fence over the baseline spread
DEFAULT_TIMING_FLOOR_S = 0.05  # medians under 50ms carry no timing signal
DEFAULT_GAUGE_THRESHOLD = 0.25
DEFAULT_HISTOGRAM_THRESHOLD = 0.5  # +50% on the p99
DEFAULT_HISTOGRAM_FLOOR = 1.0  # p99 values under 1 (ms/state) carry no signal


def _quantile(ordered: List[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sample."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def iqr(samples: List[float]) -> float:
    """The interquartile range of the samples (0 for < 2 samples)."""
    if len(samples) < 2:
        return 0.0
    ordered = sorted(samples)
    return _quantile(ordered, 0.75) - _quantile(ordered, 0.25)


@dataclass
class Finding:
    """One detected delta on one metric of one test."""

    test: str
    kind: str  # "timing" | "counter" | "gauge"
    metric: str  # "seconds", or the counter/gauge name
    baseline: float
    candidate: float
    severity: str  # "regression" | "improvement"
    detail: str = ""

    @property
    def ratio(self) -> float:
        """candidate / baseline (inf when the baseline is zero)."""
        if self.baseline == 0:
            return float("inf") if self.candidate else 1.0
        return self.candidate / self.baseline

    @property
    def delta_percent(self) -> float:
        return (self.ratio - 1.0) * 100.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "test": self.test,
            "kind": self.kind,
            "metric": self.metric,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "severity": self.severity,
            "ratio": self.ratio if self.ratio != float("inf") else None,
            "detail": self.detail,
        }


def detect_timing(
    test: str,
    baseline_samples: List[float],
    candidate_samples: List[float],
    threshold: float = DEFAULT_TIMING_THRESHOLD,
    iqr_factor: float = DEFAULT_IQR_FACTOR,
    timing_floor_s: float = DEFAULT_TIMING_FLOOR_S,
) -> Optional[Finding]:
    """Noise-aware timing comparison; ``None`` when inside the band."""
    base_median = median(baseline_samples)
    cand_median = median(candidate_samples)
    if base_median < timing_floor_s and cand_median < timing_floor_s:
        return None
    band = max(threshold * base_median, iqr_factor * iqr(baseline_samples))
    detail = "median %d samples, band +-%.4fs (%.0f%% / %.1fxIQR)" % (
        len(candidate_samples),
        band,
        threshold * 100.0,
        iqr_factor,
    )
    if cand_median > base_median + band:
        return Finding(test, "timing", "seconds", base_median, cand_median,
                       "regression", detail)
    if cand_median < base_median - band:
        return Finding(test, "timing", "seconds", base_median, cand_median,
                       "improvement", detail)
    return None


def detect_counters(
    test: str,
    baseline: Dict[str, float],
    candidate: Dict[str, float],
) -> List[Finding]:
    """Exact comparison of the deterministic work counters: *any*
    growth is a regression (1-unit growth included)."""
    findings: List[Finding] = []
    for name in sorted(set(baseline) & set(candidate)):
        before, after = baseline[name], candidate[name]
        if after > before:
            findings.append(
                Finding(test, "counter", name, before, after, "regression",
                        "deterministic work counter: any growth is real")
            )
        elif after < before:
            findings.append(
                Finding(test, "counter", name, before, after, "improvement",
                        "deterministic work counter")
            )
    return findings


def detect_gauges(
    test: str,
    baseline: Dict[str, float],
    candidate: Dict[str, float],
    threshold: float = DEFAULT_GAUGE_THRESHOLD,
) -> List[Finding]:
    """Thresholded comparison of gauges (peaks wobble; counters don't)."""
    findings: List[Finding] = []
    for name in sorted(set(baseline) & set(candidate)):
        before, after = baseline[name], candidate[name]
        if before <= 0:
            continue
        if after > before * (1.0 + threshold):
            findings.append(
                Finding(test, "gauge", name, before, after, "regression",
                        "gauge beyond +%.0f%%" % (threshold * 100.0))
            )
        elif after < before * (1.0 - threshold):
            findings.append(
                Finding(test, "gauge", name, before, after, "improvement", "")
            )
    return findings


def detect_histograms(
    test: str,
    baseline: Dict[str, Dict[str, float]],
    candidate: Dict[str, Dict[str, float]],
    threshold: float = DEFAULT_HISTOGRAM_THRESHOLD,
    floor: float = DEFAULT_HISTOGRAM_FLOOR,
) -> List[Finding]:
    """Tail comparison of distribution summaries.

    Flags a p99 that grew past ``threshold``; the detail says whether
    the p50 moved with it (uniform slowdown) or stayed flat (a genuine
    tail regression — a few pathological inputs got much slower while
    the typical case did not).  Distributions whose p99 sits under
    ``floor`` on both sides are skipped as noise.
    """
    findings: List[Finding] = []
    for name in sorted(set(baseline) & set(candidate)):
        before, after = baseline[name], candidate[name]
        base_p99 = float(before.get("p99", 0.0))
        cand_p99 = float(after.get("p99", 0.0))
        if base_p99 < floor and cand_p99 < floor:
            continue
        if base_p99 <= 0:
            continue
        base_p50 = float(before.get("p50", 0.0))
        cand_p50 = float(after.get("p50", 0.0))
        if cand_p99 > base_p99 * (1.0 + threshold):
            p50_moved = base_p50 > 0 and cand_p50 > base_p50 * (1.0 + threshold)
            detail = (
                "uniform slowdown: p50 grew with p99 (%.3f -> %.3f)"
                % (base_p50, cand_p50)
                if p50_moved
                else "tail regression: p99 grew while p50 stayed flat "
                "(%.3f -> %.3f)" % (base_p50, cand_p50)
            )
            findings.append(
                Finding(test, "histogram", name + ".p99", base_p99, cand_p99,
                        "regression", detail)
            )
        elif cand_p99 < base_p99 * (1.0 - threshold):
            findings.append(
                Finding(test, "histogram", name + ".p99", base_p99, cand_p99,
                        "improvement", "")
            )
    return findings


@dataclass
class Comparison:
    """A full candidate-vs-baseline comparison."""

    baseline: BenchRun
    candidate: BenchRun
    findings: List[Finding] = field(default_factory=list)
    added_tests: List[str] = field(default_factory=list)
    removed_tests: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "regression"]

    @property
    def improvements(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "improvement"]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    @property
    def same_commit(self) -> bool:
        return self.candidate.provenance.same_commit(self.baseline.provenance)

    def to_dict(self) -> Dict[str, object]:
        return {
            "baseline": self.baseline.provenance.to_dict(),
            "candidate": self.candidate.provenance.to_dict(),
            "same_commit": self.same_commit,
            "regressions": [f.to_dict() for f in self.regressions],
            "improvements": [f.to_dict() for f in self.improvements],
            "added_tests": list(self.added_tests),
            "removed_tests": list(self.removed_tests),
        }


def _worst_first(finding: Finding) -> tuple:
    # Regressions before improvements, then by how bad it is; exact
    # counter evidence outranks equally-sized timing wobble.
    kind_rank = {"counter": 0, "gauge": 1, "histogram": 2, "timing": 3}
    ratio = finding.ratio if finding.ratio != float("inf") else 1e18
    badness = ratio if finding.severity == "regression" else 1.0 / max(ratio, 1e-18)
    return (
        0 if finding.severity == "regression" else 1,
        -badness,
        kind_rank.get(finding.kind, 3),
        finding.test,
        finding.metric,
    )


def compare_runs(
    baseline: BenchRun,
    candidate: BenchRun,
    threshold: float = DEFAULT_TIMING_THRESHOLD,
    iqr_factor: float = DEFAULT_IQR_FACTOR,
    timing_floor_s: float = DEFAULT_TIMING_FLOOR_S,
    gauge_threshold: float = DEFAULT_GAUGE_THRESHOLD,
    histogram_threshold: float = DEFAULT_HISTOGRAM_THRESHOLD,
) -> Comparison:
    """Run both detectors over every test present in both runs."""
    comparison = Comparison(baseline=baseline, candidate=candidate)
    base_entries, cand_entries = baseline.entries, candidate.entries
    comparison.added_tests = sorted(set(cand_entries) - set(base_entries))
    comparison.removed_tests = sorted(set(base_entries) - set(cand_entries))
    for test in sorted(set(base_entries) & set(cand_entries)):
        before: BenchEntry = base_entries[test]
        after: BenchEntry = cand_entries[test]
        timing = detect_timing(
            test, before.samples, after.samples,
            threshold=threshold, iqr_factor=iqr_factor,
            timing_floor_s=timing_floor_s,
        )
        if timing is not None:
            comparison.findings.append(timing)
        comparison.findings.extend(
            detect_counters(test, before.counters, after.counters)
        )
        comparison.findings.extend(
            detect_gauges(test, before.gauges, after.gauges,
                          threshold=gauge_threshold)
        )
        comparison.findings.extend(
            detect_histograms(test, before.histograms, after.histograms,
                              threshold=histogram_threshold)
        )
    comparison.findings.sort(key=_worst_first)
    return comparison
