"""Span-correlated structured logging.

The missing glue between the span tree and a human diagnosing a run:
a context-local, buffered event log where every event records which
span was active when it was emitted.  Events live on the active
:class:`~repro.obs.recorder.Recorder` (``recorder.events``), so

* with no recorder installed, ``obs.info(...)`` is one ContextVar read
  and a ``None`` check — the zero-overhead guarantee of the rest of
  the instrumentation layer holds for logging too;
* with a recorder installed but event logging off (``--stats`` or
  ``--trace`` without ``--log``), emission is two attribute checks and
  nothing is allocated;
* with logging on, events buffer in order on the recorder and are
  written as JSONL at the end of the run (``--log FILE``), one object
  per line::

      {"ts": 1754446800.1, "level": "info", "logger": "ptime.copying",
       "message": "copying product built", "span_id": 4,
       "parent_span_id": 2, "pid": 4711, "fields": {"states": 10}}

``span_id`` / ``parent_span_id`` reference the recorder-scoped ids the
Chrome-trace exporter embeds in ``args`` (see :mod:`repro.obs.export`),
so a log line can be joined against a ``--trace`` file.  Events
recorded inside corpus worker processes ship back inside
:class:`~repro.obs.snapshot.Snapshot` and are re-parented into the
parent recorder's id space, so the join holds across the
``ProcessPoolExecutor`` boundary too.

Levels follow the stdlib numbering (DEBUG 10 < INFO 20 < WARNING 30 <
ERROR 40); an event below the recorder's ``log_level`` is dropped at
the emission site.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterable, List, Optional, TextIO, Union

from .recorder import Recorder, _RECORDER

__all__ = [
    "DEBUG",
    "INFO",
    "WARNING",
    "ERROR",
    "LEVELS",
    "LogEvent",
    "level_name",
    "parse_level",
    "log",
    "debug",
    "info",
    "warning",
    "error",
    "events_to_dicts",
    "write_log_jsonl",
    "read_log_jsonl",
]

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

#: Name -> numeric level, the CLI ``--log-level`` vocabulary.
LEVELS: Dict[str, int] = {
    "debug": DEBUG,
    "info": INFO,
    "warning": WARNING,
    "error": ERROR,
}

_NAMES: Dict[int, str] = {number: name for name, number in LEVELS.items()}


def level_name(level: int) -> str:
    """The canonical name for a numeric level (numbers off the scale
    are clamped to the nearest named level)."""
    if level in _NAMES:
        return _NAMES[level]
    for threshold in (ERROR, WARNING, INFO):
        if level >= threshold:
            return _NAMES[threshold]
    return _NAMES[DEBUG]


def parse_level(name: Union[str, int, None]) -> int:
    """``"warning"`` -> 30 (numeric input passes through)."""
    if name is None:
        return INFO
    if isinstance(name, int):
        return name
    try:
        return LEVELS[name.lower()]
    except KeyError:
        raise ValueError(
            "unknown log level %r (expected one of %s)"
            % (name, "/".join(LEVELS))
        ) from None


class LogEvent:
    """One structured log record, pinned to the span that emitted it.

    ``ts`` is wall-clock epoch seconds (the human clock); ``perf_ns``
    is the same ``perf_counter_ns`` clock the spans use, so the event
    can be placed on the span timeline in a Chrome trace.
    """

    __slots__ = ("ts", "level", "logger", "message", "fields",
                 "span_id", "parent_span_id", "pid", "perf_ns")

    def __init__(
        self,
        ts: float,
        level: int,
        logger: str,
        message: str,
        fields: Optional[Dict[str, Any]] = None,
        span_id: Optional[int] = None,
        parent_span_id: Optional[int] = None,
        pid: Optional[int] = None,
        perf_ns: Optional[int] = None,
    ) -> None:
        self.ts = ts
        self.level = level
        self.logger = logger
        self.message = message
        self.fields = fields or {}
        self.span_id = span_id
        self.parent_span_id = parent_span_id
        self.pid = pid if pid is not None else os.getpid()
        self.perf_ns = perf_ns

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL object (stable key order, plain JSON types)."""
        payload: Dict[str, Any] = {
            "ts": self.ts,
            "level": level_name(self.level),
            "logger": self.logger,
            "message": self.message,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "pid": self.pid,
            "fields": dict(self.fields),
        }
        if self.perf_ns is not None:
            payload["perf_ns"] = self.perf_ns
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LogEvent":
        return cls(
            ts=float(payload.get("ts", 0.0)),
            level=parse_level(payload.get("level", "info")),
            logger=str(payload.get("logger", "")),
            message=str(payload.get("message", "")),
            fields=dict(payload.get("fields", {})),
            span_id=payload.get("span_id"),
            parent_span_id=payload.get("parent_span_id"),
            pid=payload.get("pid"),
            perf_ns=payload.get("perf_ns"),
        )

    def __repr__(self) -> str:
        return "LogEvent(%s, %r, %r, span=%s)" % (
            level_name(self.level), self.logger, self.message, self.span_id
        )


def log(level: int, logger: str, message: str, **fields: Any) -> None:
    """Emit one event on the active recorder (no-op when logging is
    off).  The active span's id and its parent's id are captured at the
    call site."""
    rec = _RECORDER.get()
    if rec is None or rec.log_level is None or level < rec.log_level:
        return
    active = rec._stack[-1] if rec._stack else None
    cap = rec.max_events
    if cap is not None and cap > 0 and len(rec.events) >= cap:
        # Bounded buffer: keep the recent tail (the interesting part
        # of a long-running request) and count what was shed.
        del rec.events[0]
        rec.counters["obs.events.dropped"] = (
            rec.counters.get("obs.events.dropped", 0) + 1)
    rec.events.append(
        LogEvent(
            ts=time.time(),
            level=level,
            logger=logger,
            message=message,
            fields=fields or None,
            span_id=active.span_id if active is not None else None,
            parent_span_id=active.parent_id if active is not None else None,
            perf_ns=time.perf_counter_ns(),
        )
    )


def debug(logger: str, message: str, **fields: Any) -> None:
    log(DEBUG, logger, message, **fields)


def info(logger: str, message: str, **fields: Any) -> None:
    log(INFO, logger, message, **fields)


def warning(logger: str, message: str, **fields: Any) -> None:
    log(WARNING, logger, message, **fields)


def error(logger: str, message: str, **fields: Any) -> None:
    log(ERROR, logger, message, **fields)


def events_to_dicts(recorder: Recorder) -> List[Dict[str, Any]]:
    """The recorder's buffered events as JSONL-ready objects, in
    emission order."""
    return [event.to_dict() for event in recorder.events]


def write_log_jsonl(recorder: Recorder, destination: Union[str, TextIO]) -> int:
    """Write the buffered events as JSONL (one object per line, in
    emission order); returns the number of events written."""
    lines = [json.dumps(payload, sort_keys=False)
             for payload in events_to_dicts(recorder)]
    text = "\n".join(lines) + ("\n" if lines else "")
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        destination.write(text)
    return len(lines)


def read_log_jsonl(source: Union[str, TextIO, Iterable[str]]) -> List[LogEvent]:
    """Parse a ``--log`` JSONL file back into events (blank lines are
    skipped; a malformed line raises ``ValueError`` with its number)."""
    if isinstance(source, str):
        with open(source, encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    events: List[LogEvent] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            payload = json.loads(stripped)
        except ValueError:
            raise ValueError("line %d: not valid JSON" % number) from None
        if not isinstance(payload, dict):
            raise ValueError("line %d: expected a JSON object" % number)
        events.append(LogEvent.from_dict(payload))
    return events
