"""Setuptools shim.

``pip install -e .`` requires the ``wheel`` package for PEP 517
editable installs; on fully offline machines without it, use::

    python setup.py develop

which achieves the same editable install with plain setuptools.
"""

from setuptools import setup

setup()
